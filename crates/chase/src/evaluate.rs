//! Set-oriented evaluation of a conjunction of atoms over a symbolic
//! instance.
//!
//! This is the workhorse of the new C&B implementation: constraint premises
//! (and conclusions, for the semijoin extension check) are evaluated over
//! `Inst(Q)` using hash joins with selections (constants, repeated variables)
//! pushed into the joins, producing *all* homomorphisms in bulk rather than
//! one backtracking search per candidate.
//!
//! Joins probe the instance's **persistent** per-predicate column indexes
//! ([`crate::instance::Relation::index`]): an index is built at most once per
//! (relation, column-set) and maintained incrementally on insert, so repeated
//! evaluations over a growing instance never rebuild hash tables.
//!
//! [`evaluate_bindings_delta`] is the semi-naive variant: given per-atom
//! tuple watermarks, it enumerates exactly the homomorphisms that use at
//! least one tuple beyond its atom's watermark (each premise atom takes a
//! turn as the *delta atom*, joining old × delta × full), and merges the
//! per-pass results back into the **same order** the full join would produce
//! (each row carries the tuple-index trail of its join steps; the full join
//! emits rows in lexicographic trail order, so sorting the union by trail
//! reproduces it). The chase therefore applies identical steps in identical
//! order whether it joins full or delta — the byte-identical contract.

use crate::instance::SymbolicInstance;
use mars_cq::{Atom, Predicate, Substitution, Term, Variable};

/// A homomorphism produced by evaluation (bindings of the evaluated atoms'
/// variables to terms of the instance).
pub type Binding = Substitution;

/// A tuple-index window `[lo, hi)` restricting which tuples of a relation an
/// atom may match (semi-naive old/delta/full roles).
type Window = (usize, usize);

/// Below this many candidate tuples a filtered scan beats building and
/// probing a hash index (allocation + hashing dominate on tiny inputs).
const SCAN_THRESHOLD: usize = 8;

/// Choose an evaluation order for the atoms: start from the atom with the
/// most constants (most selective), then repeatedly pick an atom sharing a
/// variable with the already-ordered prefix (avoiding Cartesian products when
/// possible), preferring more constants.
fn order_atoms(atoms: &[Atom], initially_bound: &[Variable]) -> Vec<usize> {
    let n = atoms.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound: Vec<Variable> = initially_bound.to_vec();

    let const_count = |a: &Atom| a.args.iter().filter(|t| t.is_const()).count();

    while order.len() < n {
        let mut best: Option<usize> = None;
        let mut best_key = (false, 0usize);
        for (i, a) in atoms.iter().enumerate() {
            if used[i] {
                continue;
            }
            let connected = order.is_empty() || a.variables().any(|v| bound.contains(&v));
            let key =
                (connected, const_count(a) + a.variables().filter(|v| bound.contains(v)).count());
            if best.is_none() || key > best_key {
                best = Some(i);
                best_key = key;
            }
        }
        let i = best.expect("atom available");
        used[i] = true;
        order.push(i);
        bound.extend(atoms[i].variables());
    }
    order
}

/// Columnar join output: a variable per column, flat term-vector rows, and —
/// when trails are tracked — the tuple index chosen at each join step (in
/// join order) per row.
struct JoinRows {
    vars: Vec<Variable>,
    rows: Vec<Vec<Term>>,
    trails: Vec<Vec<u32>>,
}

impl JoinRows {
    fn empty(initially_bound: Vec<Variable>) -> JoinRows {
        JoinRows { vars: initially_bound, rows: Vec::new(), trails: Vec::new() }
    }
}

/// The shared join core: evaluate `atoms` (visited in `order`) over `inst`
/// extending `initial`, probing the persistent column indexes. `windows`
/// optionally restricts each atom (by its position in `atoms`) to a tuple
/// window; `track` additionally records per-row tuple-index trails so
/// semi-naive passes can be merged back into full-join order.
///
/// Intermediate join results are kept *columnar* — a shared variable list
/// plus flat term-vector rows — and only surviving final rows are
/// materialized as [`Substitution`]s by the callers. Cloning a hash-map
/// substitution per intermediate row dominated the chase profile; the term
/// vectors make each extension a `Vec` push.
fn join_rows(
    atoms: &[Atom],
    order: &[usize],
    inst: &SymbolicInstance,
    initial: &Substitution,
    windows: Option<&[Window]>,
    track: bool,
) -> JoinRows {
    let initially_bound: Vec<Variable> = initial.iter().map(|(v, _)| v).collect();
    let mut vars: Vec<Variable> = initially_bound;
    let mut rows: Vec<Vec<Term>> =
        vec![vars.iter().map(|v| initial.get(*v).expect("initially bound")).collect()];
    let mut trails: Vec<Vec<u32>> = if track { vec![Vec::new()] } else { Vec::new() };

    for &ai in order {
        if rows.is_empty() {
            return JoinRows::empty(vars);
        }
        let atom = &atoms[ai];
        let Some(rel) = inst.relation_data(atom.predicate) else {
            return JoinRows::empty(vars);
        };
        let (lo, hi) = match windows {
            Some(w) => (w[ai].0, w[ai].1.min(rel.len())),
            None => (0, rel.len()),
        };
        if lo >= hi {
            return JoinRows::empty(vars);
        }
        let tuples = rel.tuples();

        // Classify argument positions against the current column set.
        // Argument positions whose (fresh) variable becomes a new column.
        let mut new_positions: Vec<usize> = Vec::new();
        // Positions repeating a fresh variable first seen at an earlier
        // position of the same atom: the tuple must carry equal terms.
        let mut dup_positions: Vec<(usize, usize)> = Vec::new();
        // Hash-key columns of the persistent index (ascending positions) and
        // how to fill the probe key: a fixed constant or a row column.
        let mut key_cols: Vec<usize> = Vec::new();
        let mut key_sources: Vec<Result<Term, usize>> = Vec::new();
        for (i, arg) in atom.args.iter().enumerate() {
            match arg {
                Term::Const(_) => {
                    key_cols.push(i);
                    key_sources.push(Ok(*arg));
                }
                Term::Var(v) => {
                    if let Some(col) = vars.iter().position(|w| w == v) {
                        key_cols.push(i);
                        key_sources.push(Err(col));
                    } else if let Some(p) =
                        atom.args[..i].iter().position(|w| w.as_var() == Some(*v))
                    {
                        dup_positions.push((i, p));
                    } else {
                        new_positions.push(i);
                    }
                }
            }
        }

        let mut next_rows: Vec<Vec<Term>> = Vec::new();
        let mut next_trails: Vec<Vec<u32>> = Vec::new();
        // Extend one row by one matching tuple (dup filter + window applied
        // by the callers below).
        let mut extend = |row: &Vec<Term>, trail: Option<&Vec<u32>>, ti: usize| {
            let tuple = &tuples[ti];
            for &(i, p) in &dup_positions {
                if tuple[i] != tuple[p] {
                    return;
                }
            }
            let mut extended = Vec::with_capacity(row.len() + new_positions.len());
            extended.extend_from_slice(row);
            extended.extend(new_positions.iter().map(|&p| tuple[p]));
            next_rows.push(extended);
            if let Some(trail) = trail {
                let mut t = Vec::with_capacity(trail.len() + 1);
                t.extend_from_slice(trail);
                t.push(ti as u32);
                next_trails.push(t);
            }
        };

        if key_cols.is_empty() {
            // No bound position: scan the window (Cartesian extension).
            for (ri, row) in rows.iter().enumerate() {
                let trail = track.then(|| &trails[ri]);
                for ti in lo..hi {
                    extend(row, trail, ti);
                }
            }
        } else if hi - lo <= SCAN_THRESHOLD {
            // Tiny window (delta atoms, small relations): a filtered scan
            // beats building/probing a hash index.
            for (ri, row) in rows.iter().enumerate() {
                let trail = track.then(|| &trails[ri]);
                'scan: for (ti, tuple) in tuples.iter().enumerate().take(hi).skip(lo) {
                    for (i, src) in key_cols.iter().zip(&key_sources) {
                        let want = match src {
                            Ok(c) => *c,
                            Err(col) => row[*col],
                        };
                        if tuple[*i] != want {
                            continue 'scan;
                        }
                    }
                    extend(row, trail, ti);
                }
            }
        } else {
            // Probe the persistent index; posting lists are ascending tuple
            // indices, so the window is a subrange.
            let index = rel.index(&key_cols);
            let mut key: Vec<Term> = Vec::with_capacity(key_sources.len());
            for (ri, row) in rows.iter().enumerate() {
                key.clear();
                key.extend(key_sources.iter().map(|s| match s {
                    Ok(c) => *c,
                    Err(col) => row[*col],
                }));
                if let Some(matches) = index.get(&key) {
                    let from = matches.partition_point(|&ti| ti < lo);
                    let to = matches.partition_point(|&ti| ti < hi);
                    let trail = track.then(|| &trails[ri]);
                    for &ti in &matches[from..to] {
                        extend(row, trail, ti);
                    }
                }
            }
        }
        rows = next_rows;
        trails = next_trails;
        vars.extend(
            new_positions.iter().map(|&p| atom.args[p].as_var().expect("new slots are variables")),
        );
    }
    JoinRows { vars, rows, trails }
}

/// Does a columnar row satisfy every inequality?
fn row_satisfies(vars: &[Variable], row: &[Term], ineqs: &[(Term, Term)]) -> bool {
    let value = |t: Term| -> Term {
        match t {
            Term::Var(v) => {
                vars.iter().position(|w| *w == v).map(|c| row[c]).unwrap_or(Term::Var(v))
            }
            Term::Const(_) => t,
        }
    };
    ineqs.iter().all(|(a, b)| value(*a) != value(*b))
}

/// Materialize columnar rows as [`Substitution`]s extending `initial`.
fn materialize(vars: &[Variable], rows: Vec<Vec<Term>>, initial: &Substitution) -> Vec<Binding> {
    rows.into_iter()
        .map(|row| {
            let mut s = initial.clone();
            for (v, t) in vars.iter().zip(&row) {
                s.set(*v, *t);
            }
            s
        })
        .collect()
}

/// Evaluate `atoms` (a conjunction) over `inst`, extending `initial`, and
/// filter the results by the inequalities. Returns every homomorphism.
pub fn evaluate_bindings(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
) -> Vec<Binding> {
    if atoms.is_empty() {
        // Only the initial binding, provided it satisfies the inequalities.
        let ok = inequalities.iter().all(|(a, b)| initial.apply_term(*a) != initial.apply_term(*b));
        return if ok { vec![initial.clone()] } else { Vec::new() };
    }
    let initially_bound: Vec<Variable> = initial.iter().map(|(v, _)| v).collect();
    let order = order_atoms(atoms, &initially_bound);
    let mut jr = join_rows(atoms, &order, inst, initial, None, false);
    if !inequalities.is_empty() {
        jr.rows.retain(|r| row_satisfies(&jr.vars, r, inequalities));
    }
    materialize(&jr.vars, jr.rows, initial)
}

/// Semi-naive (delta-seeded) evaluation: every homomorphism that maps at
/// least one atom to a tuple at index ≥ that atom's watermark `old_len[i]`.
///
/// Homomorphisms whose atoms all map below their watermarks (*all-old*
/// bindings) are exactly the ones the chase already confirmed blocked when
/// the watermarks were taken — blocked steps stay blocked on a growing
/// instance, so skipping them is sound. Each atom takes a turn as the delta
/// atom (`old × delta × full` windows, partitioning the new bindings by
/// their first over-watermark atom), and the union is sorted by tuple-index
/// trail, which is precisely the order the full join emits — so downstream
/// chase steps fire in an order byte-identical to the naive full join.
pub fn evaluate_bindings_delta(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
    old_len: &[usize],
) -> Vec<Binding> {
    if atoms.is_empty() {
        // No atoms, hence no delta tuple can be involved: the (single)
        // initial binding is all-old by definition.
        return Vec::new();
    }
    debug_assert_eq!(atoms.len(), old_len.len());
    let initially_bound: Vec<Variable> = initial.iter().map(|(v, _)| v).collect();
    // The same join order the full join would use: every pass then probes
    // the same persistent column indexes the full join would (no per-pass
    // index variants), and the per-row trails are directly comparable.
    let order = order_atoms(atoms, &initially_bound);

    let mut vars: Vec<Variable> = Vec::new();
    let mut merged: Vec<(Vec<u32>, Vec<Term>)> = Vec::new();
    for j in 0..atoms.len() {
        if inst.relation_len(atoms[j].predicate) <= old_len[j] {
            continue; // no delta tuples for this atom
        }
        let windows: Vec<Window> = (0..atoms.len())
            .map(|k| match k.cmp(&j) {
                std::cmp::Ordering::Less => (0, old_len[k]),
                std::cmp::Ordering::Equal => (old_len[j], usize::MAX),
                std::cmp::Ordering::Greater => (0, usize::MAX),
            })
            .collect();
        let jr = join_rows(atoms, &order, inst, initial, Some(&windows), true);
        if jr.rows.is_empty() {
            // An empty pass may have short-circuited with a truncated
            // variable layout; it contributes nothing, so skip it.
            continue;
        }
        // The pass windows partition the binding space, so trails — and only
        // trails — differ across non-empty passes; the variable layout is
        // identical.
        merged.extend(jr.trails.into_iter().zip(jr.rows));
        vars = jr.vars;
    }
    // Lexicographic trail order == the order the full join enumerates rows.
    merged.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut rows: Vec<Vec<Term>> = merged.into_iter().map(|(_, row)| row).collect();
    if !inequalities.is_empty() {
        rows.retain(|r| row_satisfies(&vars, r, inequalities));
    }
    materialize(&vars, rows, initial)
}

/// Semijoin-style existence check: is there at least one extension of
/// `initial` satisfying the atoms and inequalities?
///
/// This is the chase's *blocked* test, called once per premise binding —
/// by far the highest-volume entry point of this module — so unlike
/// [`evaluate_bindings`] it does not materialize anything: a backtracking
/// search over the (join-ordered) atoms binds variables in place and
/// returns at the first witness. Candidate tuples at each depth come from
/// the persistent column indexes (probed on the positions bound so far)
/// instead of a relation scan.
pub fn satisfiable(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
) -> bool {
    if atoms.is_empty() {
        return inequalities.iter().all(|(a, b)| initial.apply_term(*a) != initial.apply_term(*b));
    }
    let initially_bound: Vec<Variable> = initial.iter().map(|(v, _)| v).collect();
    let order = order_atoms(atoms, &initially_bound);
    let mut sub = initial.clone();
    // One posting-list scratch buffer per depth: candidate tuple ids are
    // copied out of the index so no index borrow is held across recursion
    // (a deeper probe of the same relation may need to build a new index).
    let mut scratch: Vec<Vec<usize>> = vec![Vec::new(); order.len()];
    satisfiable_from(&order, 0, atoms, inequalities, inst, &mut sub, &mut scratch)
}

fn satisfiable_from(
    order: &[usize],
    depth: usize,
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    sub: &mut Substitution,
    scratch: &mut [Vec<usize>],
) -> bool {
    if depth == order.len() {
        return inequalities.iter().all(|(a, b)| sub.apply_term(*a) != sub.apply_term(*b));
    }
    let atom = &atoms[order[depth]];
    let Some(rel) = inst.relation_data(atom.predicate) else {
        return false;
    };
    if rel.is_empty() {
        return false;
    }

    // Bound positions (constants and variables already bound) form the probe
    // key; the rest are free.
    let mut key_cols: Vec<usize> = Vec::new();
    let mut key: Vec<Term> = Vec::new();
    for (i, arg) in atom.args.iter().enumerate() {
        match arg {
            Term::Const(_) => {
                key_cols.push(i);
                key.push(*arg);
            }
            Term::Var(v) => {
                if let Some(t) = sub.get(*v) {
                    key_cols.push(i);
                    key.push(t);
                }
            }
        }
    }
    let (mine, rest) = scratch.split_first_mut().expect("scratch sized to the atom order");
    if key_cols.len() == atom.args.len() {
        // Fully bound: the key *is* the tuple — a set-membership test.
        return rel.contains(&key)
            && satisfiable_from(order, depth + 1, atoms, inequalities, inst, sub, rest);
    }
    mine.clear();
    if key_cols.is_empty() {
        mine.extend(0..rel.len());
    } else if rel.len() <= SCAN_THRESHOLD {
        // Tiny relation: a filtered scan beats the hash index.
        'scan: for (ti, tuple) in rel.tuples().iter().enumerate() {
            for (i, want) in key_cols.iter().zip(&key) {
                if tuple[*i] != *want {
                    continue 'scan;
                }
            }
            mine.push(ti);
        }
    } else {
        let index = rel.index(&key_cols);
        if let Some(matches) = index.get(&key) {
            mine.extend_from_slice(matches);
        }
    }

    'tuples: for &ti in mine.iter() {
        let tuple = &rel.tuples()[ti];
        // Match the free positions against the tuple, collecting the fresh
        // bindings this tuple would add (repeated fresh variables within the
        // atom must match equal terms; bound positions already matched via
        // the probe key).
        let mut added: Vec<(Variable, Term)> = Vec::new();
        for (i, arg) in atom.args.iter().enumerate() {
            if let Term::Var(v) = arg {
                if sub.binds(*v) {
                    continue;
                }
                if let Some((_, t)) = added.iter().find(|(w, _)| w == v) {
                    if *t != tuple[i] {
                        continue 'tuples;
                    }
                } else {
                    added.push((*v, tuple[i]));
                }
            }
        }
        for (v, t) in &added {
            sub.set(*v, *t);
        }
        if satisfiable_from(order, depth + 1, atoms, inequalities, inst, sub, rest) {
            return true;
        }
        for (v, _) in &added {
            sub.remove(*v);
        }
    }
    false
}

/// Per-atom delta watermarks derived from per-predicate watermarks: the
/// convenience used by [`crate::compiled::CompiledDed::premise_bindings_delta`].
pub fn atom_watermarks(atoms: &[Atom], watermark: impl Fn(Predicate) -> usize) -> Vec<usize> {
    atoms.iter().map(|a| watermark(a.predicate)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::atom::builders::*;
    use mars_cq::{Atom, ConjunctiveQuery, Term};

    fn t(n: &str) -> Term {
        Term::var(n)
    }
    fn v(n: &str) -> Variable {
        Variable::named(n)
    }

    fn example_instance() -> SymbolicInstance {
        // Q(a,g) :- R(a,b), R(b,c), R(c,d), S(d,e), S(e,f), S(f,g)
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("a"), t("g")]).with_body(vec![
            Atom::named("R", vec![t("a"), t("b")]),
            Atom::named("R", vec![t("b"), t("c")]),
            Atom::named("R", vec![t("c"), t("d")]),
            Atom::named("S", vec![t("d"), t("e")]),
            Atom::named("S", vec![t("e"), t("f")]),
            Atom::named("S", vec![t("f"), t("g")]),
        ]);
        SymbolicInstance::from_query(&q)
    }

    #[test]
    fn example_3_1_premise_evaluation() {
        // premise: R(x,y), R(y,z), S(z,u), S(u,v) — exactly one homomorphism.
        let premise = vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("R", vec![t("y"), t("z")]),
            Atom::named("S", vec![t("z"), t("u")]),
            Atom::named("S", vec![t("u"), t("v")]),
        ];
        let inst = example_instance();
        let res = evaluate_bindings(&premise, &[], &inst, &Substitution::new());
        assert_eq!(res.len(), 1);
        let h = &res[0];
        assert_eq!(h.get(v("x")), Some(t("b")));
        assert_eq!(h.get(v("v")), Some(t("f")));
    }

    #[test]
    fn constants_are_pushed_into_the_scan() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&tag(t("n1"), "author"));
        inst.insert_atom(&tag(t("n2"), "title"));
        inst.insert_atom(&tag(t("n3"), "author"));
        let res = evaluate_bindings(&[tag(t("x"), "author")], &[], &inst, &Substitution::new());
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn repeated_variables_in_one_atom() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&Atom::named("R", vec![t("a"), t("b")]));
        inst.insert_atom(&Atom::named("R", vec![t("c"), t("c")]));
        let res = evaluate_bindings(
            &[Atom::named("R", vec![t("x"), t("x")])],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].get(v("x")), Some(t("c")));
    }

    #[test]
    fn initial_bindings_restrict_results() {
        let inst = example_instance();
        let init = Substitution::from_pairs(vec![(v("x"), t("b"))]).unwrap();
        let res = evaluate_bindings(&[Atom::named("R", vec![t("x"), t("y")])], &[], &inst, &init);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].get(v("y")), Some(t("c")));
    }

    #[test]
    fn inequalities_filter_bindings() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&Atom::named("R", vec![t("a"), t("a")]));
        inst.insert_atom(&Atom::named("R", vec![t("a"), t("b")]));
        let atoms = vec![Atom::named("R", vec![t("x"), t("y")])];
        let all = evaluate_bindings(&atoms, &[], &inst, &Substitution::new());
        assert_eq!(all.len(), 2);
        let neq = evaluate_bindings(&atoms, &[(t("x"), t("y"))], &inst, &Substitution::new());
        assert_eq!(neq.len(), 1);
    }

    #[test]
    fn empty_atom_list_checks_only_inequalities() {
        let inst = SymbolicInstance::new();
        let init = Substitution::from_pairs(vec![(v("x"), t("a")), (v("y"), t("a"))]).unwrap();
        assert_eq!(evaluate_bindings(&[], &[], &inst, &init).len(), 1);
        assert!(evaluate_bindings(&[], &[(t("x"), t("y"))], &inst, &init).is_empty());
    }

    #[test]
    fn missing_relation_yields_no_bindings() {
        let inst = example_instance();
        let res = evaluate_bindings(
            &[Atom::named("Absent", vec![t("x")])],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert!(res.is_empty());
        assert!(!satisfiable(
            &[Atom::named("Absent", vec![t("x")])],
            &[],
            &inst,
            &Substitution::new()
        ));
    }

    #[test]
    fn chain_evaluation_counts_paths() {
        // child chain n1->n2->n3->n4; pattern child(x,y),child(y,z) has 2 matches.
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&child(t("n1"), t("n2")));
        inst.insert_atom(&child(t("n2"), t("n3")));
        inst.insert_atom(&child(t("n3"), t("n4")));
        let res = evaluate_bindings(
            &[child(t("x"), t("y")), child(t("y"), t("z"))],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn disconnected_patterns_produce_cross_products() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&Atom::named("A", vec![t("a1")]));
        inst.insert_atom(&Atom::named("A", vec![t("a2")]));
        inst.insert_atom(&Atom::named("B", vec![t("b1")]));
        inst.insert_atom(&Atom::named("B", vec![t("b2")]));
        let res = evaluate_bindings(
            &[Atom::named("A", vec![t("x")]), Atom::named("B", vec![t("y")])],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn agrees_with_backtracking_homomorphism_search() {
        // Cross-check the set-oriented evaluator against the naive search
        // from mars-cq on a moderately branchy instance.
        let mut inst = SymbolicInstance::new();
        let mut atoms_in_instance = Vec::new();
        for i in 0..6 {
            for j in 0..3 {
                let a = child(t(&format!("p{i}")), t(&format!("c{i}_{j}")));
                inst.insert_atom(&a);
                atoms_in_instance.push(a);
            }
        }
        let pattern = vec![child(t("x"), t("y")), child(t("x"), t("z"))];
        let fast = evaluate_bindings(&pattern, &[], &inst, &Substitution::new());
        let index = mars_cq::AtomIndex::new(&atoms_in_instance);
        let slow = mars_cq::find_all_homomorphisms(&pattern, &index, &Substitution::new(), None);
        assert_eq!(fast.len(), slow.len());
        assert_eq!(fast.len(), 6 * 3 * 3);
    }

    /// With all-zero watermarks, the only non-empty pass is the first one
    /// and its windows are unrestricted: the delta evaluation *is* the full
    /// join, including its order.
    #[test]
    fn delta_with_zero_watermarks_equals_full_join() {
        let inst = example_instance();
        let premise = vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("R", vec![t("y"), t("z")]),
            Atom::named("S", vec![t("z"), t("u")]),
        ];
        let full = evaluate_bindings(&premise, &[], &inst, &Substitution::new());
        let delta = evaluate_bindings_delta(&premise, &[], &inst, &Substitution::new(), &[0, 0, 0]);
        assert_eq!(full, delta);
    }

    /// Delta bindings + all-old bindings partition the full join: watermarks
    /// taken before an insert make the delta evaluation return exactly the
    /// new homomorphisms, in the full join's relative order.
    #[test]
    fn delta_after_insert_returns_exactly_the_new_bindings() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&child(t("n1"), t("n2")));
        inst.insert_atom(&child(t("n2"), t("n3")));
        let pattern = vec![child(t("x"), t("y")), child(t("y"), t("z"))];
        let before = evaluate_bindings(&pattern, &[], &inst, &Substitution::new());
        assert_eq!(before.len(), 1);
        let marks = vec![inst.relation_len(pattern[0].predicate); 2];

        inst.insert_atom(&child(t("n3"), t("n4")));
        inst.insert_atom(&child(t("n0"), t("n1")));
        let after = evaluate_bindings(&pattern, &[], &inst, &Substitution::new());
        let delta = evaluate_bindings_delta(&pattern, &[], &inst, &Substitution::new(), &marks);
        // Every old binding is absent from the delta, every new one present,
        // and the delta preserves the full join's relative order.
        assert_eq!(after.len(), before.len() + delta.len());
        for b in &before {
            assert!(!delta.contains(b));
        }
        let filtered: Vec<&Binding> = after.iter().filter(|b| !before.contains(b)).collect();
        assert_eq!(filtered.len(), delta.len());
        for (f, d) in filtered.iter().zip(&delta) {
            assert_eq!(**f, *d, "delta must preserve the full join's order");
        }
    }

    /// The same partition property on a branchier instance with repeated
    /// predicates and inequalities.
    #[test]
    fn delta_partition_with_inequalities() {
        let mut inst = SymbolicInstance::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("a", "a"), ("c", "a")] {
            inst.insert_atom(&Atom::named("R", vec![t(a), t(b)]));
        }
        let pattern =
            vec![Atom::named("R", vec![t("x"), t("y")]), Atom::named("R", vec![t("y"), t("z")])];
        let ineqs = vec![(t("x"), t("z"))];
        let marks = vec![inst.relation_len(pattern[0].predicate); 2];
        inst.insert_atom(&Atom::named("R", vec![t("c"), t("d")]));
        inst.insert_atom(&Atom::named("R", vec![t("d"), t("a")]));

        let after = evaluate_bindings(&pattern, &ineqs, &inst, &Substitution::new());
        let delta = evaluate_bindings_delta(&pattern, &ineqs, &inst, &Substitution::new(), &marks);
        let old: Vec<&Binding> = after
            .iter()
            .filter(|b| {
                // A binding is all-old iff both matched tuples predate the mark.
                let pos = |x: Term, y: Term| {
                    inst.relation(pattern[0].predicate)
                        .iter()
                        .position(|tu| tu[0] == x && tu[1] == y)
                        .unwrap()
                };
                pos(b.get(v("x")).unwrap(), b.get(v("y")).unwrap()) < marks[0]
                    && pos(b.get(v("y")).unwrap(), b.get(v("z")).unwrap()) < marks[1]
            })
            .collect();
        assert_eq!(old.len() + delta.len(), after.len());
        for d in &delta {
            assert!(after.contains(d));
            assert!(!old.contains(&d));
        }
    }

    #[test]
    fn satisfiable_probes_agree_with_full_evaluation() {
        let inst = example_instance();
        let premise =
            vec![Atom::named("R", vec![t("x"), t("y")]), Atom::named("S", vec![t("u"), t("w")])];
        assert!(satisfiable(&premise, &[], &inst, &Substitution::new()));
        // Fully bound membership path.
        let init = Substitution::from_pairs(vec![(v("x"), t("a")), (v("y"), t("b"))]).unwrap();
        assert!(satisfiable(&[Atom::named("R", vec![t("x"), t("y")])], &[], &inst, &init));
        let bad = Substitution::from_pairs(vec![(v("x"), t("a")), (v("y"), t("c"))]).unwrap();
        assert!(!satisfiable(&[Atom::named("R", vec![t("x"), t("y")])], &[], &inst, &bad));
        // Repeated free variable within an atom.
        let mut inst2 = SymbolicInstance::new();
        inst2.insert_atom(&Atom::named("R", vec![t("a"), t("b")]));
        assert!(!satisfiable(
            &[Atom::named("R", vec![t("x"), t("x")])],
            &[],
            &inst2,
            &Substitution::new()
        ));
        inst2.insert_atom(&Atom::named("R", vec![t("c"), t("c")]));
        assert!(satisfiable(
            &[Atom::named("R", vec![t("x"), t("x")])],
            &[],
            &inst2,
            &Substitution::new()
        ));
    }
}
