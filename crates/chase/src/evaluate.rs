//! Set-oriented evaluation of a conjunction of atoms over a symbolic
//! instance.
//!
//! This is the workhorse of the new C&B implementation: constraint premises
//! (and conclusions, for the semijoin extension check) are evaluated over
//! `Inst(Q)` using hash joins with selections (constants, repeated variables)
//! pushed into the joins, producing *all* homomorphisms in bulk rather than
//! one backtracking search per candidate.

use crate::instance::SymbolicInstance;
use mars_cq::{Atom, Substitution, Term, Variable};
use std::collections::HashMap;

/// A homomorphism produced by evaluation (bindings of the evaluated atoms'
/// variables to terms of the instance).
pub type Binding = Substitution;

/// How an argument position of an atom is handled during the join.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    /// The position carries a constant; tuples not matching it are filtered
    /// out while building the hash index (selection pushdown).
    Const,
    /// The position's variable is already bound by the current prefix of the
    /// join (column index); it participates in the hash key.
    Join(usize),
    /// The position's variable is new; it becomes a new column.
    New,
    /// The position repeats a fresh variable first seen at the given earlier
    /// argument position of the same atom; tuples must carry equal terms.
    NewDup(usize),
}

/// Choose an evaluation order for the atoms: start from the atom with the
/// most constants (most selective), then repeatedly pick an atom sharing a
/// variable with the already-ordered prefix (avoiding Cartesian products when
/// possible), preferring more constants.
fn order_atoms(atoms: &[Atom], initially_bound: &[Variable]) -> Vec<usize> {
    let n = atoms.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound: Vec<Variable> = initially_bound.to_vec();

    let const_count = |a: &Atom| a.args.iter().filter(|t| t.is_const()).count();

    for _ in 0..n {
        let mut best: Option<usize> = None;
        let mut best_key = (false, 0usize);
        for (i, a) in atoms.iter().enumerate() {
            if used[i] {
                continue;
            }
            let connected = order.is_empty() || a.variables().any(|v| bound.contains(&v));
            let key =
                (connected, const_count(a) + a.variables().filter(|v| bound.contains(v)).count());
            if best.is_none() || key > best_key {
                best = Some(i);
                best_key = key;
            }
        }
        let i = best.expect("atom available");
        used[i] = true;
        order.push(i);
        bound.extend(atoms[i].variables());
    }
    order
}

/// Evaluate `atoms` (a conjunction) over `inst`, extending `initial`, and
/// filter the results by the inequalities. Returns every homomorphism.
///
/// Intermediate join results are kept *columnar* — a shared variable list
/// plus flat term-vector rows — and only the surviving final rows are
/// materialized as [`Substitution`]s. Cloning a hash-map substitution per
/// intermediate row dominated the chase profile; the term vectors make each
/// extension a `Vec` push.
pub fn evaluate_bindings(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
) -> Vec<Binding> {
    if atoms.is_empty() {
        // Only the initial binding, provided it satisfies the inequalities.
        let ok = inequalities.iter().all(|(a, b)| initial.apply_term(*a) != initial.apply_term(*b));
        return if ok { vec![initial.clone()] } else { Vec::new() };
    }

    let initially_bound: Vec<Variable> = initial.iter().map(|(v, _)| v).collect();
    let order = order_atoms(atoms, &initially_bound);

    // Columnar state: `vars[c]` is the variable of column `c`, each row holds
    // that variable's term at position `c`.
    let mut vars: Vec<Variable> = initially_bound;
    let mut rows: Vec<Vec<Term>> =
        vec![vars.iter().map(|v| initial.get(*v).expect("initially bound")).collect()];

    for &ai in &order {
        if rows.is_empty() {
            return Vec::new();
        }
        let atom = &atoms[ai];
        let tuples = inst.relation(atom.predicate);
        if tuples.is_empty() {
            return Vec::new();
        }

        // Classify argument positions against the current column set.
        let mut slots: Vec<Slot> = Vec::with_capacity(atom.args.len());
        // Argument positions whose (fresh) variable becomes a new column.
        let mut new_positions: Vec<usize> = Vec::new();
        for (i, arg) in atom.args.iter().enumerate() {
            match arg {
                Term::Const(_) => slots.push(Slot::Const),
                Term::Var(v) => {
                    if let Some(col) = vars.iter().position(|w| w == v) {
                        slots.push(Slot::Join(col));
                    } else if let Some(p) =
                        atom.args[..i].iter().position(|w| w.as_var() == Some(*v))
                    {
                        // Repeated fresh variable within the atom: the tuple
                        // must carry equal terms at both positions.
                        slots.push(Slot::NewDup(p));
                    } else {
                        slots.push(Slot::New);
                        new_positions.push(i);
                    }
                }
            }
        }
        let join_positions: Vec<(usize, usize)> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Join(col) => Some((i, *col)),
                _ => None,
            })
            .collect();

        // Build the hash index over the relation: filter on constants and on
        // repeated variables within the atom, key on the join positions.
        let mut index: HashMap<Vec<Term>, Vec<&Vec<Term>>> = HashMap::new();
        'tuples: for tuple in tuples {
            for (i, slot) in slots.iter().enumerate() {
                match slot {
                    Slot::Const if tuple[i] != atom.args[i] => continue 'tuples,
                    Slot::NewDup(p) if tuple[i] != tuple[*p] => continue 'tuples,
                    _ => {}
                }
            }
            let key: Vec<Term> = join_positions.iter().map(|&(i, _)| tuple[i]).collect();
            index.entry(key).or_default().push(tuple);
        }

        // Probe.
        let mut next_rows: Vec<Vec<Term>> = Vec::new();
        for row in &rows {
            let key: Vec<Term> = join_positions.iter().map(|&(_, col)| row[col]).collect();
            if let Some(matches) = index.get(&key) {
                for tuple in matches {
                    let mut extended = Vec::with_capacity(row.len() + new_positions.len());
                    extended.extend_from_slice(row);
                    extended.extend(new_positions.iter().map(|&p| tuple[p]));
                    next_rows.push(extended);
                }
            }
        }
        rows = next_rows;
        vars.extend(
            new_positions.iter().map(|&p| atom.args[p].as_var().expect("new slots are variables")),
        );
    }

    if !inequalities.is_empty() {
        let value = |row: &[Term], t: Term| -> Term {
            match t {
                Term::Var(v) => {
                    vars.iter().position(|w| *w == v).map(|c| row[c]).unwrap_or(Term::Var(v))
                }
                Term::Const(_) => t,
            }
        };
        rows.retain(|r| inequalities.iter().all(|(a, b)| value(r, *a) != value(r, *b)));
    }

    rows.into_iter()
        .map(|row| {
            let mut s = initial.clone();
            for (v, t) in vars.iter().zip(&row) {
                s.set(*v, *t);
            }
            s
        })
        .collect()
}

/// Semijoin-style existence check: is there at least one extension of
/// `initial` satisfying the atoms and inequalities?
///
/// This is the chase's *blocked* test, called once per premise binding —
/// by far the highest-volume entry point of this module — so unlike
/// [`evaluate_bindings`] it does not materialize anything: a backtracking
/// search over the (join-ordered) atoms binds variables in place and
/// returns at the first witness.
pub fn satisfiable(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
) -> bool {
    if atoms.is_empty() {
        return inequalities.iter().all(|(a, b)| initial.apply_term(*a) != initial.apply_term(*b));
    }
    let initially_bound: Vec<Variable> = initial.iter().map(|(v, _)| v).collect();
    let order = order_atoms(atoms, &initially_bound);
    let mut sub = initial.clone();
    satisfiable_from(&order, 0, atoms, inequalities, inst, &mut sub)
}

fn satisfiable_from(
    order: &[usize],
    depth: usize,
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    sub: &mut Substitution,
) -> bool {
    if depth == order.len() {
        return inequalities.iter().all(|(a, b)| sub.apply_term(*a) != sub.apply_term(*b));
    }
    let atom = &atoms[order[depth]];
    'tuples: for tuple in inst.relation(atom.predicate) {
        // Match the atom's arguments against the tuple, collecting the fresh
        // bindings this tuple would add (repeated fresh variables within the
        // atom must match equal terms).
        let mut added: Vec<(Variable, Term)> = Vec::new();
        for (i, arg) in atom.args.iter().enumerate() {
            match arg {
                Term::Const(_) => {
                    if tuple[i] != *arg {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => {
                    if let Some(t) = sub.get(*v) {
                        if t != tuple[i] {
                            continue 'tuples;
                        }
                    } else if let Some((_, t)) = added.iter().find(|(w, _)| w == v) {
                        if *t != tuple[i] {
                            continue 'tuples;
                        }
                    } else {
                        added.push((*v, tuple[i]));
                    }
                }
            }
        }
        for (v, t) in &added {
            sub.set(*v, *t);
        }
        if satisfiable_from(order, depth + 1, atoms, inequalities, inst, sub) {
            return true;
        }
        for (v, _) in &added {
            sub.remove(*v);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::atom::builders::*;
    use mars_cq::{Atom, ConjunctiveQuery, Term};

    fn t(n: &str) -> Term {
        Term::var(n)
    }
    fn v(n: &str) -> Variable {
        Variable::named(n)
    }

    fn example_instance() -> SymbolicInstance {
        // Q(a,g) :- R(a,b), R(b,c), R(c,d), S(d,e), S(e,f), S(f,g)
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("a"), t("g")]).with_body(vec![
            Atom::named("R", vec![t("a"), t("b")]),
            Atom::named("R", vec![t("b"), t("c")]),
            Atom::named("R", vec![t("c"), t("d")]),
            Atom::named("S", vec![t("d"), t("e")]),
            Atom::named("S", vec![t("e"), t("f")]),
            Atom::named("S", vec![t("f"), t("g")]),
        ]);
        SymbolicInstance::from_query(&q)
    }

    #[test]
    fn example_3_1_premise_evaluation() {
        // premise: R(x,y), R(y,z), S(z,u), S(u,v) — exactly one homomorphism.
        let premise = vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("R", vec![t("y"), t("z")]),
            Atom::named("S", vec![t("z"), t("u")]),
            Atom::named("S", vec![t("u"), t("v")]),
        ];
        let inst = example_instance();
        let res = evaluate_bindings(&premise, &[], &inst, &Substitution::new());
        assert_eq!(res.len(), 1);
        let h = &res[0];
        assert_eq!(h.get(v("x")), Some(t("b")));
        assert_eq!(h.get(v("v")), Some(t("f")));
    }

    #[test]
    fn constants_are_pushed_into_the_scan() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&tag(t("n1"), "author"));
        inst.insert_atom(&tag(t("n2"), "title"));
        inst.insert_atom(&tag(t("n3"), "author"));
        let res = evaluate_bindings(&[tag(t("x"), "author")], &[], &inst, &Substitution::new());
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn repeated_variables_in_one_atom() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&Atom::named("R", vec![t("a"), t("b")]));
        inst.insert_atom(&Atom::named("R", vec![t("c"), t("c")]));
        let res = evaluate_bindings(
            &[Atom::named("R", vec![t("x"), t("x")])],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].get(v("x")), Some(t("c")));
    }

    #[test]
    fn initial_bindings_restrict_results() {
        let inst = example_instance();
        let init = Substitution::from_pairs(vec![(v("x"), t("b"))]).unwrap();
        let res = evaluate_bindings(&[Atom::named("R", vec![t("x"), t("y")])], &[], &inst, &init);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].get(v("y")), Some(t("c")));
    }

    #[test]
    fn inequalities_filter_bindings() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&Atom::named("R", vec![t("a"), t("a")]));
        inst.insert_atom(&Atom::named("R", vec![t("a"), t("b")]));
        let atoms = vec![Atom::named("R", vec![t("x"), t("y")])];
        let all = evaluate_bindings(&atoms, &[], &inst, &Substitution::new());
        assert_eq!(all.len(), 2);
        let neq = evaluate_bindings(&atoms, &[(t("x"), t("y"))], &inst, &Substitution::new());
        assert_eq!(neq.len(), 1);
    }

    #[test]
    fn empty_atom_list_checks_only_inequalities() {
        let inst = SymbolicInstance::new();
        let init = Substitution::from_pairs(vec![(v("x"), t("a")), (v("y"), t("a"))]).unwrap();
        assert_eq!(evaluate_bindings(&[], &[], &inst, &init).len(), 1);
        assert!(evaluate_bindings(&[], &[(t("x"), t("y"))], &inst, &init).is_empty());
    }

    #[test]
    fn missing_relation_yields_no_bindings() {
        let inst = example_instance();
        let res = evaluate_bindings(
            &[Atom::named("Absent", vec![t("x")])],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert!(res.is_empty());
        assert!(!satisfiable(
            &[Atom::named("Absent", vec![t("x")])],
            &[],
            &inst,
            &Substitution::new()
        ));
    }

    #[test]
    fn chain_evaluation_counts_paths() {
        // child chain n1->n2->n3->n4; pattern child(x,y),child(y,z) has 2 matches.
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&child(t("n1"), t("n2")));
        inst.insert_atom(&child(t("n2"), t("n3")));
        inst.insert_atom(&child(t("n3"), t("n4")));
        let res = evaluate_bindings(
            &[child(t("x"), t("y")), child(t("y"), t("z"))],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn disconnected_patterns_produce_cross_products() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&Atom::named("A", vec![t("a1")]));
        inst.insert_atom(&Atom::named("A", vec![t("a2")]));
        inst.insert_atom(&Atom::named("B", vec![t("b1")]));
        inst.insert_atom(&Atom::named("B", vec![t("b2")]));
        let res = evaluate_bindings(
            &[Atom::named("A", vec![t("x")]), Atom::named("B", vec![t("y")])],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn agrees_with_backtracking_homomorphism_search() {
        // Cross-check the set-oriented evaluator against the naive search
        // from mars-cq on a moderately branchy instance.
        let mut inst = SymbolicInstance::new();
        let mut atoms_in_instance = Vec::new();
        for i in 0..6 {
            for j in 0..3 {
                let a = child(t(&format!("p{i}")), t(&format!("c{i}_{j}")));
                inst.insert_atom(&a);
                atoms_in_instance.push(a);
            }
        }
        let pattern = vec![child(t("x"), t("y")), child(t("x"), t("z"))];
        let fast = evaluate_bindings(&pattern, &[], &inst, &Substitution::new());
        let index = mars_cq::AtomIndex::new(&atoms_in_instance);
        let slow = mars_cq::find_all_homomorphisms(&pattern, &index, &Substitution::new(), None);
        assert_eq!(fast.len(), slow.len());
        assert_eq!(fast.len(), 6 * 3 * 3);
    }
}
