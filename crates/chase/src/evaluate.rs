//! Set-oriented evaluation of a conjunction of atoms over a symbolic
//! instance.
//!
//! This is the workhorse of the new C&B implementation: constraint premises
//! (and conclusions, for the semijoin extension check) are evaluated over
//! `Inst(Q)` using hash joins with selections (constants, repeated variables)
//! pushed into the joins, producing *all* homomorphisms in bulk rather than
//! one backtracking search per candidate.

use crate::instance::SymbolicInstance;
use mars_cq::{Atom, Substitution, Term, Variable};
use std::collections::HashMap;

/// A homomorphism produced by evaluation (bindings of the evaluated atoms'
/// variables to terms of the instance).
pub type Binding = Substitution;

/// How an argument position of an atom is handled during the join.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    /// The position carries a constant; tuples not matching it are filtered
    /// out while building the hash index (selection pushdown).
    Const,
    /// The position's variable is already bound by the current prefix of the
    /// join; it participates in the hash key.
    Join,
    /// The position's variable is new; it is bound by this atom.
    New,
}

/// Choose an evaluation order for the atoms: start from the atom with the
/// most constants (most selective), then repeatedly pick an atom sharing a
/// variable with the already-ordered prefix (avoiding Cartesian products when
/// possible), preferring more constants.
fn order_atoms(atoms: &[Atom], initially_bound: &[Variable]) -> Vec<usize> {
    let n = atoms.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound: Vec<Variable> = initially_bound.to_vec();

    let const_count = |a: &Atom| a.args.iter().filter(|t| t.is_const()).count();

    for _ in 0..n {
        let mut best: Option<usize> = None;
        let mut best_key = (false, 0usize);
        for (i, a) in atoms.iter().enumerate() {
            if used[i] {
                continue;
            }
            let connected = order.is_empty() || a.variables().any(|v| bound.contains(&v));
            let key =
                (connected, const_count(a) + a.variables().filter(|v| bound.contains(v)).count());
            if best.is_none() || key > best_key {
                best = Some(i);
                best_key = key;
            }
        }
        let i = best.expect("atom available");
        used[i] = true;
        order.push(i);
        bound.extend(atoms[i].variables());
    }
    order
}

/// Evaluate `atoms` (a conjunction) over `inst`, extending `initial`, and
/// filter the results by the inequalities. Returns every homomorphism.
pub fn evaluate_bindings(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
) -> Vec<Binding> {
    if atoms.is_empty() {
        // Only the initial binding, provided it satisfies the inequalities.
        let ok = inequalities.iter().all(|(a, b)| initial.apply_term(*a) != initial.apply_term(*b));
        return if ok { vec![initial.clone()] } else { Vec::new() };
    }

    let initially_bound: Vec<Variable> = initial.iter().map(|(v, _)| v).collect();
    let order = order_atoms(atoms, &initially_bound);

    let mut rows: Vec<Substitution> = vec![initial.clone()];

    for &ai in &order {
        if rows.is_empty() {
            return Vec::new();
        }
        let atom = &atoms[ai];
        let tuples = inst.relation(atom.predicate);
        if tuples.is_empty() {
            return Vec::new();
        }

        // Classify argument positions relative to the first row (all rows have
        // the same bound-variable set by construction).
        let probe = &rows[0];
        let slots: Vec<Slot> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(_) => Slot::Const,
                Term::Var(v) => {
                    if probe.binds(*v) {
                        Slot::Join
                    } else {
                        Slot::New
                    }
                }
            })
            .collect();

        let join_positions: Vec<usize> =
            (0..slots.len()).filter(|&i| slots[i] == Slot::Join).collect();

        // Build the hash index over the relation: filter on constants and on
        // repeated variables within the atom, key on the join positions.
        let mut index: HashMap<Vec<Term>, Vec<&Vec<Term>>> = HashMap::new();
        'tuples: for tuple in tuples {
            // Selection pushdown: constants.
            for (i, slot) in slots.iter().enumerate() {
                if *slot == Slot::Const && tuple[i] != atom.args[i] {
                    continue 'tuples;
                }
            }
            // Selection pushdown: repeated variables inside the atom must be
            // matched by equal terms in the tuple.
            for i in 0..atom.args.len() {
                for j in (i + 1)..atom.args.len() {
                    if atom.args[i].is_var() && atom.args[i] == atom.args[j] && tuple[i] != tuple[j]
                    {
                        continue 'tuples;
                    }
                }
            }
            let key: Vec<Term> = join_positions.iter().map(|&i| tuple[i]).collect();
            index.entry(key).or_default().push(tuple);
        }

        // Probe.
        let mut next_rows: Vec<Substitution> = Vec::new();
        for row in &rows {
            let key: Vec<Term> =
                join_positions.iter().map(|&i| row.apply_term(atom.args[i])).collect();
            if let Some(matches) = index.get(&key) {
                for tuple in matches {
                    let mut extended = row.clone();
                    let mut ok = true;
                    for (i, slot) in slots.iter().enumerate() {
                        if *slot == Slot::New {
                            if let Term::Var(v) = atom.args[i] {
                                if !extended.bind(v, tuple[i]) {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                    }
                    if ok {
                        next_rows.push(extended);
                    }
                }
            }
        }
        rows = next_rows;
    }

    if !inequalities.is_empty() {
        rows.retain(|r| inequalities.iter().all(|(a, b)| r.apply_term(*a) != r.apply_term(*b)));
    }
    rows
}

/// Semijoin-style existence check: is there at least one extension of
/// `initial` satisfying the atoms and inequalities? Cheaper than materializing
/// all bindings when only existence matters.
pub fn satisfiable(
    atoms: &[Atom],
    inequalities: &[(Term, Term)],
    inst: &SymbolicInstance,
    initial: &Substitution,
) -> bool {
    // A dedicated early-exit evaluation would be slightly faster; for the
    // input sizes produced by one conclusion this is not a bottleneck.
    !evaluate_bindings(atoms, inequalities, inst, initial).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::atom::builders::*;
    use mars_cq::{Atom, ConjunctiveQuery, Term};

    fn t(n: &str) -> Term {
        Term::var(n)
    }
    fn v(n: &str) -> Variable {
        Variable::named(n)
    }

    fn example_instance() -> SymbolicInstance {
        // Q(a,g) :- R(a,b), R(b,c), R(c,d), S(d,e), S(e,f), S(f,g)
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("a"), t("g")]).with_body(vec![
            Atom::named("R", vec![t("a"), t("b")]),
            Atom::named("R", vec![t("b"), t("c")]),
            Atom::named("R", vec![t("c"), t("d")]),
            Atom::named("S", vec![t("d"), t("e")]),
            Atom::named("S", vec![t("e"), t("f")]),
            Atom::named("S", vec![t("f"), t("g")]),
        ]);
        SymbolicInstance::from_query(&q)
    }

    #[test]
    fn example_3_1_premise_evaluation() {
        // premise: R(x,y), R(y,z), S(z,u), S(u,v) — exactly one homomorphism.
        let premise = vec![
            Atom::named("R", vec![t("x"), t("y")]),
            Atom::named("R", vec![t("y"), t("z")]),
            Atom::named("S", vec![t("z"), t("u")]),
            Atom::named("S", vec![t("u"), t("v")]),
        ];
        let inst = example_instance();
        let res = evaluate_bindings(&premise, &[], &inst, &Substitution::new());
        assert_eq!(res.len(), 1);
        let h = &res[0];
        assert_eq!(h.get(v("x")), Some(t("b")));
        assert_eq!(h.get(v("v")), Some(t("f")));
    }

    #[test]
    fn constants_are_pushed_into_the_scan() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&tag(t("n1"), "author"));
        inst.insert_atom(&tag(t("n2"), "title"));
        inst.insert_atom(&tag(t("n3"), "author"));
        let res = evaluate_bindings(&[tag(t("x"), "author")], &[], &inst, &Substitution::new());
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn repeated_variables_in_one_atom() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&Atom::named("R", vec![t("a"), t("b")]));
        inst.insert_atom(&Atom::named("R", vec![t("c"), t("c")]));
        let res = evaluate_bindings(
            &[Atom::named("R", vec![t("x"), t("x")])],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].get(v("x")), Some(t("c")));
    }

    #[test]
    fn initial_bindings_restrict_results() {
        let inst = example_instance();
        let init = Substitution::from_pairs(vec![(v("x"), t("b"))]).unwrap();
        let res = evaluate_bindings(&[Atom::named("R", vec![t("x"), t("y")])], &[], &inst, &init);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].get(v("y")), Some(t("c")));
    }

    #[test]
    fn inequalities_filter_bindings() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&Atom::named("R", vec![t("a"), t("a")]));
        inst.insert_atom(&Atom::named("R", vec![t("a"), t("b")]));
        let atoms = vec![Atom::named("R", vec![t("x"), t("y")])];
        let all = evaluate_bindings(&atoms, &[], &inst, &Substitution::new());
        assert_eq!(all.len(), 2);
        let neq = evaluate_bindings(&atoms, &[(t("x"), t("y"))], &inst, &Substitution::new());
        assert_eq!(neq.len(), 1);
    }

    #[test]
    fn empty_atom_list_checks_only_inequalities() {
        let inst = SymbolicInstance::new();
        let init = Substitution::from_pairs(vec![(v("x"), t("a")), (v("y"), t("a"))]).unwrap();
        assert_eq!(evaluate_bindings(&[], &[], &inst, &init).len(), 1);
        assert!(evaluate_bindings(&[], &[(t("x"), t("y"))], &inst, &init).is_empty());
    }

    #[test]
    fn missing_relation_yields_no_bindings() {
        let inst = example_instance();
        let res = evaluate_bindings(
            &[Atom::named("Absent", vec![t("x")])],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert!(res.is_empty());
        assert!(!satisfiable(
            &[Atom::named("Absent", vec![t("x")])],
            &[],
            &inst,
            &Substitution::new()
        ));
    }

    #[test]
    fn chain_evaluation_counts_paths() {
        // child chain n1->n2->n3->n4; pattern child(x,y),child(y,z) has 2 matches.
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&child(t("n1"), t("n2")));
        inst.insert_atom(&child(t("n2"), t("n3")));
        inst.insert_atom(&child(t("n3"), t("n4")));
        let res = evaluate_bindings(
            &[child(t("x"), t("y")), child(t("y"), t("z"))],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn disconnected_patterns_produce_cross_products() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&Atom::named("A", vec![t("a1")]));
        inst.insert_atom(&Atom::named("A", vec![t("a2")]));
        inst.insert_atom(&Atom::named("B", vec![t("b1")]));
        inst.insert_atom(&Atom::named("B", vec![t("b2")]));
        let res = evaluate_bindings(
            &[Atom::named("A", vec![t("x")]), Atom::named("B", vec![t("y")])],
            &[],
            &inst,
            &Substitution::new(),
        );
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn agrees_with_backtracking_homomorphism_search() {
        // Cross-check the set-oriented evaluator against the naive search
        // from mars-cq on a moderately branchy instance.
        let mut inst = SymbolicInstance::new();
        let mut atoms_in_instance = Vec::new();
        for i in 0..6 {
            for j in 0..3 {
                let a = child(t(&format!("p{i}")), t(&format!("c{i}_{j}")));
                inst.insert_atom(&a);
                atoms_in_instance.push(a);
            }
        }
        let pattern = vec![child(t("x"), t("y")), child(t("x"), t("z"))];
        let fast = evaluate_bindings(&pattern, &[], &inst, &Substitution::new());
        let index = mars_cq::AtomIndex::new(&atoms_in_instance);
        let slow = mars_cq::find_all_homomorphisms(&pattern, &index, &Substitution::new(), None);
        assert_eq!(fast.len(), slow.len());
        assert_eq!(fast.len(), 6 * 3 * 3);
    }
}
