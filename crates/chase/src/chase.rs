//! The set-oriented chase to the universal plan.
//!
//! Chasing a query with a set of DEDs is implemented as repeated rounds of
//! bulk premise evaluation over the symbolic instance (hash joins, Section
//! 3.1), a semijoin extension check per homomorphism, and set-oriented
//! application of the unsatisfied steps. The `(refl)/(base)/(trans)` TIX
//! constraints are short-cut by a direct transitive-closure computation
//! (Section 3.2) when [`ChaseOptions::use_shortcut`] is enabled.

use crate::compiled::{CompiledDed, CompiledDeps, DedIndex};
use crate::evaluate::JoinPlanner;
use crate::instance::{FrozenInstance, SymbolicInstance};
use crate::shortcut::{apply_closure_watermarked, ClosureConstraints, ClosureInputMark};
use mars_cq::{Atom, Conjunct, ConjunctiveQuery, Ded, Predicate, Substitution, Term, Variable};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Options controlling the chase.
#[derive(Clone, Debug)]
pub struct ChaseOptions {
    /// Short-cut the `(refl)/(base)/(trans)` constraints by computing the
    /// transitive closure directly (Section 3.2).
    pub use_shortcut: bool,
    /// Maximum number of chase rounds per branch (root-to-leaf path; children
    /// of a split inherit the rounds their ancestors consumed). A round ends
    /// at the first dependency that applies any step (EGD-priority restart),
    /// so this effectively bounds the number of *dependency applications*,
    /// not full sweeps — the default is sized accordingly (divergent chases
    /// are additionally stopped by `max_atoms` and `timeout`).
    pub max_rounds: usize,
    /// Maximum number of atoms in any branch instance.
    pub max_atoms: usize,
    /// Maximum number of branches of the chase tree (disjunctive DEDs).
    pub max_branches: usize,
    /// Wall-clock timeout, measured from the start of each chase *run*. A
    /// resumed chase (seeded or resident) restarts this clock — callers that
    /// need one budget to span an initial chase **and** every resume (the
    /// anytime backchase, per-request service deadlines) must set
    /// [`ChaseOptions::deadline`] instead.
    pub timeout: Option<Duration>,
    /// Absolute wall-clock deadline. Unlike [`ChaseOptions::timeout`], the
    /// deadline is a fixed [`Instant`]: every branch worker of every level
    /// and every *resumed* chase (thawed [`FrozenInstance`] seeds included)
    /// checks against the same point in time, so a deadline set before a
    /// resume cannot be silently ignored. A chase stopped by the deadline
    /// reports `completed = false` with [`ChaseStop::Deadline`].
    pub deadline: Option<Instant>,
    /// Lower bound for the disambiguator indices of invented (fresh)
    /// variables. The backchase raises this above every variable index of the
    /// candidate pool so that a chase of one candidate can later be extended
    /// with further pool atoms ([`chase_branches_with_atoms`]) without an
    /// invented variable colliding with a pool variable of the same name.
    pub min_fresh_index: u32,
    /// Semi-naive (delta-seeded) premise joins: a dirty dependency seeds its
    /// join from the tuples inserted since it was last confirmed at fixpoint
    /// (each premise atom takes a turn as the delta atom) instead of
    /// re-joining its full premise. Produces a universal plan byte-identical
    /// to the naive full join — the delta bindings come back in the full
    /// join's order and the skipped all-old bindings were all blocked.
    /// On by default; [`ChaseOptions::with_naive_joins`] disables it (the
    /// ablation baseline and the agreement tests).
    pub semi_naive: bool,
    /// How each premise-join step is resolved to a filtered scan or an
    /// index probe. [`JoinPlanner::Adaptive`] (the default) decides per
    /// step from the instance's incremental relation statistics;
    /// [`ChaseOptions::with_fixed_scan_threshold`] restores the historical
    /// fixed-threshold rule as a fallback/ablation. The planner never
    /// changes a chase result — only join cost (agreement is
    /// property-tested and enforced in CI).
    pub join_planner: JoinPlanner,
    /// Number of worker threads chasing the branches of one worklist level
    /// (disjunctive DEDs split the chase into independent branches). `1`
    /// runs sequentially; any value produces byte-identical universal plans
    /// (branches are chased independently — per-branch fresh-variable
    /// counters — and merged back in level order).
    pub threads: usize,
}

impl Default for ChaseOptions {
    fn default() -> Self {
        ChaseOptions {
            use_shortcut: true,
            max_rounds: 500_000,
            max_atoms: 200_000,
            max_branches: 32,
            timeout: None,
            deadline: None,
            min_fresh_index: 0,
            semi_naive: true,
            join_planner: JoinPlanner::default(),
            threads: 1,
        }
    }
}

impl ChaseOptions {
    /// Options with the shortcut disabled (used by the ablation experiments).
    pub fn without_shortcut() -> ChaseOptions {
        ChaseOptions { use_shortcut: false, ..Default::default() }
    }

    /// Builder: set a wall-clock timeout.
    pub fn with_timeout(mut self, d: Duration) -> ChaseOptions {
        self.timeout = Some(d);
        self
    }

    /// Builder: set an absolute wall-clock deadline honored by this run and
    /// by every chase resumed from its branches (see
    /// [`ChaseOptions::deadline`]).
    pub fn with_deadline(mut self, deadline: Instant) -> ChaseOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Builder: disable the semi-naive delta-seeded joins (every dirty
    /// dependency re-joins its full premise — the pre-delta baseline the
    /// agreement tests and ablation experiments compare against).
    pub fn with_naive_joins(mut self) -> ChaseOptions {
        self.semi_naive = false;
        self
    }

    /// Builder: chase the branches of each worklist level on `n` worker
    /// threads (byte-identical results for any thread count).
    pub fn with_threads(mut self, n: usize) -> ChaseOptions {
        self.threads = n.max(1);
        self
    }

    /// Builder: replace the adaptive statistics-driven join planning with
    /// the historical fixed rule — scan any join window of at most
    /// `threshold` tuples, probe (building the index if needed) anything
    /// larger. This is the documented fallback and the ablation baseline
    /// the adaptive-vs-fixed agreement tests compare against; results are
    /// byte-identical either way ([`JoinPlanner`]). The pre-statistics
    /// engine hard-coded [`JoinPlanner::DEFAULT_FIXED_THRESHOLD`].
    pub fn with_fixed_scan_threshold(mut self, threshold: usize) -> ChaseOptions {
        self.join_planner = JoinPlanner::FixedThreshold(threshold);
        self
    }

    /// Builder: set the join planner directly (see [`JoinPlanner`]).
    pub fn with_join_planner(mut self, planner: JoinPlanner) -> ChaseOptions {
        self.join_planner = planner;
        self
    }
}

/// Which budget stopped an incomplete chase. `None` in [`ChaseStats::stop`]
/// whenever the chase reached its fixpoint ([`ChaseStats::completed`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaseStop {
    /// A branch exhausted [`ChaseOptions::max_rounds`].
    Rounds,
    /// A branch instance grew past [`ChaseOptions::max_atoms`].
    Atoms,
    /// The wall clock passed [`ChaseOptions::timeout`] or
    /// [`ChaseOptions::deadline`].
    Deadline,
    /// The chase tree grew past [`ChaseOptions::max_branches`] and the
    /// excess branches were parked unchased.
    Branches,
}

/// Bookkeeping collected during the chase.
#[derive(Clone, Debug, Default)]
pub struct ChaseStats {
    /// Number of rounds executed.
    pub rounds: usize,
    /// Number of applied chase steps (atom-producing or unifying).
    pub applied_steps: usize,
    /// Number of `desc` atoms added by the shortcut.
    pub shortcut_desc_added: usize,
    /// Number of failed branches (denials or constant clashes).
    pub failed_branches: usize,
    /// True if the chase reached a fixpoint within the budget.
    pub completed: bool,
    /// The first budget that stopped the chase when `completed` is false
    /// (`None` on a completed chase). Degraded answers are tagged from this
    /// upstream, so a deadline stop is distinguishable from a size ceiling.
    pub stop: Option<ChaseStop>,
    /// Wall-clock duration.
    pub duration: Duration,
}

/// The chase result: one universal plan per surviving branch.
#[derive(Clone, Debug)]
pub struct UniversalPlan {
    /// Surviving branches (exactly one for non-disjunctive dependency sets).
    pub branches: Vec<ConjunctiveQuery>,
    /// For each branch, the substitution accumulated by EGD unifications
    /// during the chase: it maps variables of the *input* query to the terms
    /// that replaced them. Needed to resume a chase from a previously chased
    /// branch (see [`chase_branches_with_atoms`]) — atoms phrased over the
    /// input query's variables must be renamed before insertion.
    pub renamings: Vec<Substitution>,
    /// Chase statistics.
    pub stats: ChaseStats,
}

impl UniversalPlan {
    /// The single branch, if the chase did not branch.
    pub fn single(&self) -> Option<&ConjunctiveQuery> {
        if self.branches.len() == 1 {
            self.branches.first()
        } else {
            None
        }
    }

    /// The first branch; panics if the query was inconsistent with the
    /// constraints (no surviving branch). Library callers that cannot rule
    /// out an inconsistent input should use [`UniversalPlan::try_primary`].
    pub fn primary(&self) -> &ConjunctiveQuery {
        self.branches.first().expect("universal plan has no surviving branch")
    }

    /// The first branch, or `None` when the query was inconsistent with the
    /// constraints (every chase branch failed) — the non-panicking form of
    /// [`UniversalPlan::primary`].
    pub fn try_primary(&self) -> Option<&ConjunctiveQuery> {
        self.branches.first()
    }

    /// Total number of atoms across branches (used in experiment reports).
    pub fn total_atoms(&self) -> usize {
        self.branches.iter().map(|b| b.body.len()).sum()
    }
}

/// One branch of the chase tree during execution.
#[derive(Clone, Debug)]
struct Branch {
    inst: SymbolicInstance,
    head: Vec<Term>,
    inequalities: Vec<(Term, Term)>,
    /// Composition of every unification applied to this branch, relative to
    /// the variables of the query the chase started from.
    renaming: Substitution,
    /// Delta tracking: `needs_check[i]` is true when compiled dependency `i`
    /// may have acquired a new unblocked premise binding since it was last
    /// confirmed at fixpoint (an atom of one of its premise predicates was
    /// inserted or rewritten). Dependencies with a false flag are skipped by
    /// [`run_round`] — the instance only grows and blocked steps stay
    /// blocked, so skipping them is sound.
    needs_check: Vec<bool>,
    /// Semi-naive delta watermarks: `marks[i]` holds, per premise predicate
    /// of compiled dependency `i` (aligned with its `premise_preds`), the
    /// relation length when the dependency was last confirmed at fixpoint.
    /// Tuples at index ≥ the watermark are that dependency's delta; 0 means
    /// the whole relation is delta (initial state, or the relation was
    /// rewritten by an EGD). A dirty dependency whose marks are all 0 falls
    /// back to the full join.
    marks: Vec<Vec<usize>>,
    /// Next fresh-variable disambiguator. Per-branch: branches are chased
    /// independently (children inherit the parent's counter at a split),
    /// which is what makes the level-parallel worklist deterministic.
    fresh: u32,
    /// Rounds consumed on the root-to-leaf path (per-branch round budget).
    rounds: usize,
    /// Closure-shortcut input watermarks, one per detected group (empty =
    /// unknown, forcing the first application). Lets [`chase_branch`] skip
    /// the transitive-closure recomputation on rounds where no
    /// `child`/`desc`/`el` relation changed.
    closure_marks: Vec<ClosureInputMark>,
    /// EGD rewrite epoch: bumped whenever a unification rewrites the
    /// instance in place (lengths alone then no longer witness "unchanged").
    rewrites: u64,
}

impl Branch {
    fn from_query(q: &ConjunctiveQuery) -> Branch {
        Branch {
            inst: SymbolicInstance::from_query(q),
            head: q.head.clone(),
            inequalities: q.inequalities.clone(),
            renaming: Substitution::new(),
            needs_check: Vec::new(),
            marks: Vec::new(),
            fresh: 0,
            rounds: 0,
            closure_marks: Vec::new(),
            rewrites: 0,
        }
    }

    fn rename(&mut self, s: &Substitution, index: &DedIndex) {
        self.rewrites += 1;
        for p in self.inst.apply_substitution(s) {
            index.mark_rewrite(p, &mut self.needs_check, &mut self.marks);
        }
        self.head = self.head.iter().map(|t| s.apply_term_deep(*t)).collect();
        self.inequalities = self
            .inequalities
            .iter()
            .map(|(a, b)| (s.apply_term_deep(*a), s.apply_term_deep(*b)))
            .collect();
        self.renaming = self.renaming.then(s);
    }

    fn to_query(&self, name: &str) -> ConjunctiveQuery {
        self.inst.to_query(name, self.head.clone(), self.inequalities.clone())
    }
}

enum RoundResult {
    NoChange,
    Changed,
    Failed,
    Split(Vec<Branch>),
}

/// Apply one conclusion conjunct under homomorphism `h`. Returns `Err(())` if
/// the application forces two distinct constants to be equal.
fn apply_conjunct(
    branch: &mut Branch,
    conjunct: &Conjunct,
    h: &Substitution,
    index: &DedIndex,
) -> Result<(), ()> {
    let mut sub = h.clone();
    // Freshen every conclusion variable not bound by the premise mapping.
    for v in conjunct.variables() {
        if !sub.binds(v) {
            sub.set(v, Term::Var(Variable { name: v.name, index: branch.fresh }));
            branch.fresh += 1;
        }
    }
    for atom in &conjunct.atoms {
        let applied = sub.apply_atom(atom);
        if branch.inst.insert_atom(&applied) {
            index.mark(applied.predicate, &mut branch.needs_check);
        }
    }
    for (a, b) in &conjunct.equalities {
        let ia = sub.apply_term_deep(*a);
        let ib = sub.apply_term_deep(*b);
        if ia == ib {
            continue;
        }
        let (from, to) = match (ia, ib) {
            (Term::Var(v), t) => (v, t),
            (t, Term::Var(v)) => (v, t),
            (Term::Const(_), Term::Const(_)) => return Err(()),
        };
        let mut s = Substitution::new();
        s.set(from, to);
        branch.rename(&s, index);
        sub = sub.then(&s);
    }
    Ok(())
}

/// One round over a branch: evaluate every *dirty* dependency's premise,
/// apply every unblocked step. Returns as soon as a disjunctive or
/// unifying step requires restarting the round.
///
/// Dependencies whose `needs_check` flag is off are skipped entirely: no
/// atom of their premise predicates was inserted or rewritten since they
/// were last confirmed at fixpoint, the instance only grows, and blocked
/// steps stay blocked — so no new unblocked binding can exist. This is what
/// makes resumed back-chases (a fixpoint seed plus one atom) touch only the
/// dependency cone of the new atom instead of sweeping the whole set.
///
/// A dirty dependency with non-zero delta watermarks additionally joins
/// **semi-naive**: [`CompiledDed::premise_bindings_delta`] seeds the join
/// from the tuples inserted past the watermarks instead of re-joining the
/// full premise. The all-old bindings it skips were each confirmed blocked
/// when the watermarks were taken, and the delta bindings come back in the
/// full join's order — so the applied-step sequence (and with it the
/// universal plan) is byte-identical to the naive full join.
fn run_round(
    branch: &mut Branch,
    compiled: &[CompiledDed],
    index: &DedIndex,
    stats: &mut ChaseStats,
    options: &ChaseOptions,
) -> RoundResult {
    let ChaseOptions { max_atoms, semi_naive, join_planner: planner, .. } = *options;
    let mut changed = false;
    for (di, ded) in compiled.iter().enumerate() {
        if !branch.needs_check[di] {
            continue;
        }
        // Watermark snapshot *before* evaluating: tuples this round inserts
        // stay above it, so they remain delta for the next evaluation.
        let snapshot = if semi_naive { ded.premise_watermarks(&branch.inst) } else { Vec::new() };
        let use_delta = semi_naive && branch.marks[di].iter().any(|&m| m > 0);
        let bindings = if use_delta {
            ded.premise_bindings_delta_with(&branch.inst, &branch.marks[di], planner)
        } else {
            ded.premise_bindings_with(&branch.inst, planner)
        };
        let mut applied_any = false;
        for h in bindings {
            // Re-check against the (possibly grown) instance so that bulk
            // application does not duplicate work already satisfied earlier in
            // this round.
            if ded.blocked_with(&h, &branch.inst, planner) {
                continue;
            }
            stats.applied_steps += 1;
            applied_any = true;
            if ded.conclusions.is_empty() {
                return RoundResult::Failed;
            }
            if ded.conclusions.len() > 1 {
                let mut children = Vec::new();
                for c in &ded.conclusions {
                    let mut child = branch.clone();
                    if apply_conjunct(&mut child, &c.conjunct, &h, index).is_ok() {
                        children.push(child);
                    } else {
                        stats.failed_branches += 1;
                    }
                }
                return RoundResult::Split(children);
            }
            let conclusion = &ded.conclusions[0];
            match apply_conjunct(branch, &conclusion.conjunct, &h, index) {
                Ok(()) => changed = true,
                Err(()) => return RoundResult::Failed,
            }
            if branch.inst.len() > max_atoms {
                return RoundResult::Changed;
            }
            // A unification may invalidate the remaining pre-computed
            // bindings for this dependency: restart the round.
            if !conclusion.conjunct.equalities.is_empty() {
                return RoundResult::Changed;
            }
        }
        if !applied_any {
            // Every binding blocked: this dependency is at fixpoint until an
            // atom of one of its premise predicates changes (apply_conjunct /
            // rename re-mark it through the index). Advance the delta
            // watermarks to the snapshot — everything below it has just been
            // confirmed blocked, so the next wake-up joins only the delta.
            branch.needs_check[di] = false;
            if semi_naive {
                branch.marks[di] = snapshot;
            }
        }
        // Restart after the first dependency that applied any step, so the
        // EGDs (sorted to the front of `compiled`) re-run before further
        // TGDs fire. Letting a later TGD see atoms a pending unification is
        // about to merge makes it invent existential structure for both
        // duplicates — growth that is sound but multiplies the instance and
        // every subsequent premise evaluation.
        if changed {
            return RoundResult::Changed;
        }
    }
    RoundResult::NoChange
}

/// Chase `query` with `deds` to the universal plan.
///
/// Convenience wrapper that compiles the dependency set for this one chase.
/// Long-lived callers (the C&B engine, `Mars`) must build a [`CompiledDeps`]
/// once and use [`chase_to_universal_plan_compiled`] instead — recompiling
/// per chase is exactly the overhead the shared compilation removes.
pub fn chase_to_universal_plan(
    query: &ConjunctiveQuery,
    deds: &[Ded],
    options: &ChaseOptions,
) -> UniversalPlan {
    chase_to_universal_plan_compiled(query, &CompiledDeps::new(deds), options)
}

/// Chase `query` to the universal plan with an already-compiled dependency
/// set (see [`CompiledDeps`]).
pub fn chase_to_universal_plan_compiled(
    query: &ConjunctiveQuery,
    compiled: &CompiledDeps,
    options: &ChaseOptions,
) -> UniversalPlan {
    run_chase(vec![Branch::from_query(query)], &query.name, compiled, options, None)
}

/// Resume a chase from already-chased branches, each extended with extra
/// atoms.
///
/// `seeds` are `(branch, renaming)` pairs as returned by a previous chase of
/// a *subquery* (its `branches` zipped with its `renamings`); `extra` is
/// phrased over the variables of that original subquery and is renamed per
/// branch before insertion. Because the chase is monotone, chasing
/// `chase(Q) ∪ θ(extra)` reaches a universal plan homomorphically equivalent
/// to chasing `Q ∪ extra` from scratch — but the seed branches are already at
/// fixpoint, so only consequences of the new atoms fire. This is the
/// memoization hook the backchase uses to grow candidates one atom at a time.
pub fn chase_branches_with_atoms(
    seeds: &[(ConjunctiveQuery, Substitution)],
    extra: &[Atom],
    name: &str,
    deds: &[Ded],
    options: &ChaseOptions,
) -> UniversalPlan {
    chase_branches_with_atoms_compiled(seeds, extra, name, &CompiledDeps::new(deds), options)
}

/// [`chase_branches_with_atoms`] with an already-compiled dependency set —
/// the form the backchase hot loop uses (one shared compilation across every
/// memoized resume).
pub fn chase_branches_with_atoms_compiled(
    seeds: &[(ConjunctiveQuery, Substitution)],
    extra: &[Atom],
    name: &str,
    compiled: &CompiledDeps,
    options: &ChaseOptions,
) -> UniversalPlan {
    let (compiled_deds, closure, _) = compiled.for_chase(options.use_shortcut);
    let initial: Vec<Branch> = seeds
        .iter()
        .map(|(q, renaming)| {
            let mut b = Branch::from_query(q);
            b.renaming = renaming.clone();
            // The seed is at fixpoint: every binding over the pre-insert
            // tuples is blocked. Watermark every dependency at the
            // pre-insert relation lengths so the dirty ones seed their
            // joins from exactly the delta — the inserted atoms and their
            // consequences.
            if options.semi_naive {
                b.marks = compiled_deds.iter().map(|d| d.premise_watermarks(&b.inst)).collect();
            }
            // Closure is likewise at fixpoint over the pre-insert relations:
            // mark it *before* the inserts so the first round only recomputes
            // groups whose inputs the inserted atoms actually grew.
            if let Some(c) = closure {
                b.closure_marks = c.marks_at_fixpoint(&b.inst, b.rewrites);
            }
            for a in extra {
                b.inst.insert_atom(&renaming.apply_atom_deep(a));
            }
            b
        })
        .collect();
    // The seeds are at fixpoint, so only dependencies whose premise mentions
    // a predicate of the inserted atoms can have new unblocked steps — the
    // chase starts with exactly those dirty (renaming preserves predicates).
    let dirty: HashSet<Predicate> = extra.iter().map(|a| a.predicate).collect();
    run_chase(initial, name, compiled, options, Some(&dirty))
}

/// One chased branch kept *resident*: the frozen symbolic instance (with its
/// warm column indexes, distinct statistics and scan-work ledgers), the head
/// and inequalities it carries, and the renaming the chase accumulated.
///
/// Unlike the `(ConjunctiveQuery, Substitution)` seeds of
/// [`chase_branches_with_atoms_compiled`], resuming from a `ResidentBranch`
/// does not re-parse the query into a fresh instance — it thaws the snapshot,
/// so every index and statistic the previous chase built is reused as-is. The
/// snapshot is `Sync` and can be shared by reference across backchase worker
/// threads.
#[derive(Clone, Debug)]
pub struct ResidentBranch {
    inst: FrozenInstance,
    head: Vec<Term>,
    inequalities: Vec<(Term, Term)>,
    renaming: Substitution,
}

impl ResidentBranch {
    /// The renaming accumulated by the chase that produced this branch (maps
    /// variables of the chased query to the terms that replaced them).
    pub fn renaming(&self) -> &Substitution {
        &self.renaming
    }

    /// The branch head (in branch variable space).
    pub fn head(&self) -> &[Term] {
        &self.head
    }

    /// The frozen instance backing the branch. The backchase reads it to
    /// assemble containment targets directly from the relations — in
    /// particular, to partition a resumed branch's atoms into the prefix
    /// carried over from its memoized seed and the fresh delta.
    pub fn instance(&self) -> &FrozenInstance {
        &self.inst
    }

    /// The branch as a query with the given name (deterministic atom order,
    /// as in [`SymbolicInstance::to_query`]).
    pub fn to_query(&self, name: &str) -> ConjunctiveQuery {
        self.inst.to_query(name, self.head.clone(), self.inequalities.clone())
    }

    /// Thaw into a live chase branch (warm indexes carried over, no rebuild).
    fn thaw(&self) -> Branch {
        Branch {
            inst: self.inst.thaw(),
            head: self.head.clone(),
            inequalities: self.inequalities.clone(),
            renaming: self.renaming.clone(),
            needs_check: Vec::new(),
            marks: Vec::new(),
            fresh: 0,
            rounds: 0,
            closure_marks: Vec::new(),
            rewrites: 0,
        }
    }
}

/// A completed chase whose branches stay resident (see [`ResidentBranch`]).
///
/// This is the chase result form the backchase memoizes across levels: a
/// candidate's chase is kept as frozen instances, and each superset of the
/// candidate resumes directly from them instead of re-parsing memoized
/// queries from scratch.
#[derive(Clone, Debug)]
pub struct ResidentChase {
    branches: Vec<ResidentBranch>,
    stats: ChaseStats,
}

impl ResidentChase {
    /// Chase statistics.
    pub fn stats(&self) -> &ChaseStats {
        &self.stats
    }

    /// Number of surviving branches.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// Did every branch fail (query inconsistent with the constraints)?
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// The resident branches.
    pub fn branches(&self) -> &[ResidentBranch] {
        &self.branches
    }

    /// Take ownership of the resident branches (for memoization).
    pub fn into_branches(self) -> Vec<ResidentBranch> {
        self.branches
    }

    /// The surviving branches as queries named `{name}_up{i}` — the same
    /// queries [`UniversalPlan::branches`] would hold.
    pub fn branch_queries(&self, name: &str) -> Vec<ConjunctiveQuery> {
        self.branches
            .iter()
            .enumerate()
            .map(|(i, b)| b.to_query(&format!("{name}_up{i}")))
            .collect()
    }

    /// Convert to a [`UniversalPlan`] (thaws nothing; renders each branch).
    pub fn into_universal_plan(self, name: &str) -> UniversalPlan {
        let branches = self.branch_queries(name);
        let renamings = self.branches.into_iter().map(|b| b.renaming).collect();
        UniversalPlan { branches, renamings, stats: self.stats }
    }
}

/// Chase `query` to a *resident* result (see [`ResidentChase`]) with an
/// already-compiled dependency set. Identical chase to
/// [`chase_to_universal_plan_compiled`]; only the result form differs — the
/// branches keep their warm instances instead of flattening to queries.
pub fn chase_to_resident_compiled(
    query: &ConjunctiveQuery,
    compiled: &CompiledDeps,
    options: &ChaseOptions,
) -> ResidentChase {
    let (done, stats) =
        run_chase_branches(vec![Branch::from_query(query)], compiled, options, None);
    freeze_done(done, stats)
}

/// Resume a chase from resident branches, each extended with extra atoms —
/// the resident counterpart of [`chase_branches_with_atoms_compiled`].
///
/// Each seed is thawed (its warm indexes, statistics and scan ledgers carry
/// over without any rebuild), watermarked at its pre-insert relation lengths,
/// and grown by the renamed `extra` atoms; only the dependency cone of the
/// inserted predicates starts dirty, exactly as in the re-parsing resume
/// path.
pub fn chase_resident_with_atoms_compiled(
    seeds: &[ResidentBranch],
    extra: &[Atom],
    compiled: &CompiledDeps,
    options: &ChaseOptions,
) -> ResidentChase {
    let (compiled_deds, closure, _) = compiled.for_chase(options.use_shortcut);
    let initial: Vec<Branch> = seeds
        .iter()
        .map(|seed| {
            let mut b = seed.thaw();
            // The seed is at fixpoint: watermark every dependency at the
            // pre-insert relation lengths so the dirty ones join only the
            // delta (the inserted atoms and their consequences).
            if options.semi_naive {
                b.marks = compiled_deds.iter().map(|d| d.premise_watermarks(&b.inst)).collect();
            }
            // Closure fixpoint too: mark before the inserts (see the
            // re-parsing resume path above).
            if let Some(c) = closure {
                b.closure_marks = c.marks_at_fixpoint(&b.inst, b.rewrites);
            }
            for a in extra {
                b.inst.insert_atom(&b.renaming.apply_atom_deep(a));
            }
            b
        })
        .collect();
    let dirty: HashSet<Predicate> = extra.iter().map(|a| a.predicate).collect();
    let (done, stats) = run_chase_branches(initial, compiled, options, Some(&dirty));
    freeze_done(done, stats)
}

/// Freeze finished branches into a [`ResidentChase`].
fn freeze_done(done: Vec<Branch>, stats: ChaseStats) -> ResidentChase {
    let branches = done
        .into_iter()
        .map(|b| ResidentBranch {
            inst: b.inst.freeze(),
            head: b.head,
            inequalities: b.inequalities,
            renaming: b.renaming,
        })
        .collect();
    ResidentChase { branches, stats }
}

/// What chasing one branch to quiescence produced. The finished branch is
/// boxed: a `Branch` carries its instance, watermarks and closure marks
/// inline, which would otherwise dwarf the other variants.
enum BranchOutcome {
    /// Reached a fixpoint (or ran out of budget — `completed` is cleared in
    /// the per-branch stats then).
    Done(Box<Branch>),
    /// A denial fired or a unification forced a constant clash.
    Failed,
    /// A disjunctive dependency split the branch; the children continue on
    /// the next worklist level.
    Split(Vec<Branch>),
}

/// Chase one branch until it finishes, fails or splits. Self-contained: all
/// state lives in the branch (fresh counter, delta watermarks, round budget)
/// and in the local `stats`, which is what lets a worklist level run its
/// branches on parallel workers and still merge deterministically.
fn chase_branch(
    mut branch: Branch,
    compiled: &[CompiledDed],
    closure: Option<&ClosureConstraints>,
    index: &DedIndex,
    options: &ChaseOptions,
    start: Instant,
    stats: &mut ChaseStats,
) -> BranchOutcome {
    loop {
        let over_budget = if branch.rounds >= options.max_rounds {
            Some(ChaseStop::Rounds)
        } else if branch.inst.len() >= options.max_atoms {
            Some(ChaseStop::Atoms)
        } else if options.timeout.map(|t| start.elapsed() > t).unwrap_or(false)
            || options.deadline.map(|d| Instant::now() >= d).unwrap_or(false)
        {
            Some(ChaseStop::Deadline)
        } else {
            None
        };
        if let Some(stop) = over_budget {
            stats.completed = false;
            stats.stop = Some(stop);
            return BranchOutcome::Done(Box::new(branch));
        }
        branch.rounds += 1;
        stats.rounds += 1;

        let mut shortcut_changed = false;
        if let Some(closure) = closure {
            if closure.any() {
                let added = apply_closure_watermarked(
                    &mut branch.inst,
                    closure,
                    &mut branch.closure_marks,
                    branch.rewrites,
                );
                stats.shortcut_desc_added += added;
                shortcut_changed = added > 0;
                if added > 0 {
                    // The closure inserted `desc` atoms behind the index's
                    // back: re-check exactly the dependencies whose premise
                    // mentions a group's `desc` relation — the only ones the
                    // shortcut can unblock (the delta watermarks stay valid,
                    // closure atoms are appended above them).
                    for g in &closure.groups {
                        index.mark(g.desc_pred(), &mut branch.needs_check);
                    }
                }
            }
        }

        match run_round(&mut branch, compiled, index, stats, options) {
            RoundResult::NoChange => {
                if !shortcut_changed {
                    return BranchOutcome::Done(Box::new(branch));
                }
            }
            RoundResult::Changed => {}
            RoundResult::Failed => {
                stats.failed_branches += 1;
                return BranchOutcome::Failed;
            }
            RoundResult::Split(children) => return BranchOutcome::Split(children),
        }
    }
}

/// Chase every branch of one worklist level, on `threads` workers when that
/// pays off. Results come back in level order regardless of thread count —
/// each worker owns a disjoint slice of the output vector — so the merge in
/// [`run_chase`] is deterministic.
fn chase_level(
    level: Vec<Branch>,
    compiled: &[CompiledDed],
    closure: Option<&ClosureConstraints>,
    index: &DedIndex,
    options: &ChaseOptions,
    start: Instant,
) -> Vec<(BranchOutcome, ChaseStats)> {
    let fresh_stats = || ChaseStats { completed: true, ..Default::default() };
    let threads = options.threads.max(1).min(level.len());
    if threads <= 1 {
        return level
            .into_iter()
            .map(|b| {
                let mut s = fresh_stats();
                let r = chase_branch(b, compiled, closure, index, options, start, &mut s);
                (r, s)
            })
            .collect();
    }
    let chunk = level.len().div_ceil(threads);
    let mut outs: Vec<Option<(BranchOutcome, ChaseStats)>> = Vec::new();
    outs.resize_with(level.len(), || None);
    let mut chunks: Vec<Vec<Branch>> = Vec::new();
    {
        let mut it = level.into_iter();
        loop {
            let c: Vec<Branch> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(c);
        }
    }
    std::thread::scope(|scope| {
        for (branches, out) in chunks.into_iter().zip(outs.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (j, b) in branches.into_iter().enumerate() {
                    let mut s = fresh_stats();
                    let r = chase_branch(b, compiled, closure, index, options, start, &mut s);
                    out[j] = Some((r, s));
                }
            });
        }
    });
    outs.into_iter().map(|o| o.expect("every level slot chased")).collect()
}

/// The chase driver shared by [`chase_to_universal_plan_compiled`] and
/// [`chase_branches_with_atoms_compiled`].
///
/// The dependency set arrives pre-compiled (closure detection, per-DED
/// compilation, EGD-priority ordering, premise-predicate index — see
/// [`CompiledDeps`]); nothing is compiled per chase. `initial_dirty`
/// restricts the initial delta (see [`DedIndex::initial_needs`]): `None` for
/// a from-scratch chase, the inserted predicates for a chase resumed from
/// fixpoint seeds.
///
/// The branch worklist is **level-synchronous**: every pending branch of a
/// level is chased independently (optionally on a worker pool,
/// [`ChaseOptions::threads`]) and the outcomes are merged back in level
/// order, so the universal plan is byte-identical for any thread count.
fn run_chase(
    initial: Vec<Branch>,
    name: &str,
    deps: &CompiledDeps,
    options: &ChaseOptions,
    initial_dirty: Option<&HashSet<Predicate>>,
) -> UniversalPlan {
    let (done, stats) = run_chase_branches(initial, deps, options, initial_dirty);
    let branches =
        done.iter().enumerate().map(|(i, b)| b.to_query(&format!("{name}_up{i}"))).collect();
    let renamings = done.iter().map(|b| b.renaming.clone()).collect();
    UniversalPlan { branches, renamings, stats }
}

/// The worklist driver behind [`run_chase`], returning the finished branches
/// themselves (live instances included) so resident callers can freeze them
/// instead of flattening to queries.
fn run_chase_branches(
    initial: Vec<Branch>,
    deps: &CompiledDeps,
    options: &ChaseOptions,
    initial_dirty: Option<&HashSet<Predicate>>,
) -> (Vec<Branch>, ChaseStats) {
    let start = Instant::now();
    let (compiled, closure, index) = deps.for_chase(options.use_shortcut);

    let mut stats = ChaseStats { completed: true, ..Default::default() };
    let base_fresh =
        (initial.iter().map(|b| b.inst.max_variable_index()).max().unwrap_or_default() + 1)
            .max(options.min_fresh_index);
    let mut level = initial;
    for b in &mut level {
        b.needs_check = index.initial_needs(initial_dirty);
        if b.marks.len() != compiled.len() {
            b.marks = compiled.iter().map(|d| vec![0; d.premise_preds.len()]).collect();
        }
        b.fresh = base_fresh;
    }
    let mut done: Vec<Branch> = Vec::new();

    while !level.is_empty() {
        // Branch budget: branches beyond it are parked unchased (and the
        // plan is flagged incomplete), matching the old worklist behaviour.
        if done.len() + level.len() > options.max_branches {
            stats.completed = false;
            stats.stop.get_or_insert(ChaseStop::Branches);
            let keep = options.max_branches.saturating_sub(done.len());
            let parked = level.split_off(keep);
            done.extend(parked);
            if level.is_empty() {
                break;
            }
        }
        let outcomes = chase_level(level, compiled, closure, index, options, start);
        let mut next: Vec<Branch> = Vec::new();
        for (outcome, s) in outcomes {
            stats.rounds += s.rounds;
            stats.applied_steps += s.applied_steps;
            stats.shortcut_desc_added += s.shortcut_desc_added;
            stats.failed_branches += s.failed_branches;
            stats.completed &= s.completed;
            if stats.stop.is_none() {
                stats.stop = s.stop;
            }
            match outcome {
                BranchOutcome::Done(b) => done.push(*b),
                BranchOutcome::Failed => {}
                BranchOutcome::Split(children) => next.extend(children),
            }
        }
        level = next;
    }

    stats.duration = start.elapsed();
    (done, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::atom::builders::*;
    use mars_cq::ded::view_dependencies;
    use mars_cq::{naive_chase, Atom, ChaseBudget, Conjunct, Term};

    fn t(n: &str) -> Term {
        Term::var(n)
    }
    fn v(n: &str) -> Variable {
        Variable::named(n)
    }

    fn tix_core() -> Vec<Ded> {
        vec![
            Ded::tgd("base", vec![child(t("x"), t("y"))], vec![], vec![desc(t("x"), t("y"))]),
            Ded::tgd(
                "trans",
                vec![desc(t("x"), t("y")), desc(t("y"), t("z"))],
                vec![],
                vec![desc(t("x"), t("z"))],
            ),
        ]
    }

    #[test]
    fn section_2_3_universal_plan_matches_naive_chase() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let defq = ConjunctiveQuery::new("V").with_head(vec![t("x"), t("z")]).with_body(vec![
            Atom::named("A", vec![t("x"), t("y")]),
            Atom::named("B", vec![t("y"), t("z")]),
        ]);
        let (c_v, b_v) = view_dependencies("V", &defq);
        let deds = vec![ind, c_v, b_v];
        let up = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        assert!(up.stats.completed);
        let plan = up.primary();
        assert_eq!(plan.body.len(), 3);
        let preds: Vec<&str> = plan.body.iter().map(|a| a.predicate.name()).collect();
        assert!(preds.contains(&"V"));

        // Same size as the naive chase result.
        let naive = naive_chase(&q, &deds, &ChaseBudget::small());
        assert_eq!(naive.single().unwrap().body.len(), plan.body.len());
    }

    #[test]
    fn chain_closure_with_and_without_shortcut_agree() {
        let n = 7;
        let mut body = vec![root(t("x0")), desc(t("x0"), t("x1"))];
        for i in 1..n {
            body.push(child(t(&format!("x{i}")), t(&format!("x{}", i + 1))));
        }
        let q = ConjunctiveQuery::new("path").with_head(vec![t(&format!("x{n}"))]).with_body(body);
        let with = chase_to_universal_plan(&q, &tix_core(), &ChaseOptions::default());
        let without = chase_to_universal_plan(&q, &tix_core(), &ChaseOptions::without_shortcut());
        assert!(with.stats.completed && without.stats.completed);
        assert_eq!(with.primary().body.len(), without.primary().body.len());
        assert!(with.stats.shortcut_desc_added > 0);
        assert_eq!(without.stats.shortcut_desc_added, 0);
        // The shortcut replaces many individual steps.
        assert!(with.stats.applied_steps < without.stats.applied_steps);
    }

    #[test]
    fn egd_unification_rewrites_head() {
        // key: R(k,a) ∧ R(k,b) → a = b; head exposes both a and b.
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("x"), t("y")]).with_body(vec![
            Atom::named("R", vec![t("k"), t("x")]),
            Atom::named("R", vec![t("k"), t("y")]),
        ]);
        let key = Ded::egd(
            "key",
            vec![Atom::named("R", vec![t("u"), t("p")]), Atom::named("R", vec![t("u"), t("q")])],
            t("p"),
            t("q"),
        );
        let up = chase_to_universal_plan(&q, &[key], &ChaseOptions::default());
        let plan = up.primary();
        assert_eq!(plan.head[0], plan.head[1], "head variables must be unified");
        assert_eq!(plan.body.len(), 1);
    }

    /// Resuming a chase from a previously chased subquery plus one atom must
    /// reach the same universal plan as chasing the extended query from
    /// scratch (the memoization contract of the backchase).
    #[test]
    fn seeded_chase_matches_scratch_chase() {
        let q_sub = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let opts = ChaseOptions::default();
        let up_sub = chase_to_universal_plan(&q_sub, std::slice::from_ref(&ind), &opts);
        let seeds: Vec<(ConjunctiveQuery, Substitution)> =
            up_sub.branches.iter().cloned().zip(up_sub.renamings.iter().cloned()).collect();

        let extra = Atom::named("A", vec![t("y"), t("w")]);
        let seeded = chase_branches_with_atoms(
            &seeds,
            std::slice::from_ref(&extra),
            "S",
            std::slice::from_ref(&ind),
            &opts,
        );
        let scratch = chase_to_universal_plan(&q_sub.clone().with_atom(extra), &[ind], &opts);
        assert!(seeded.stats.completed && scratch.stats.completed);
        assert_eq!(seeded.primary().body.len(), scratch.primary().body.len());
        // Homomorphically equivalent (head-preserving both ways).
        use mars_cq::containment::containment_mapping;
        assert!(containment_mapping(seeded.primary(), scratch.primary()).is_some());
        assert!(containment_mapping(scratch.primary(), seeded.primary()).is_some());
    }

    /// The resident resume path (thawed frozen instances) reaches a universal
    /// plan homomorphically equivalent to both the re-parsing resume path and
    /// the from-scratch chase, and confirms completion the same way.
    #[test]
    fn resident_chase_matches_seeded_and_scratch_chase() {
        let q_sub = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let opts = ChaseOptions::default();
        let compiled = CompiledDeps::new(std::slice::from_ref(&ind));

        let resident = chase_to_resident_compiled(&q_sub, &compiled, &opts);
        assert!(resident.stats().completed);
        assert_eq!(resident.len(), 1);
        assert!(!resident.is_empty());

        let extra = Atom::named("A", vec![t("y"), t("w")]);
        let resumed = chase_resident_with_atoms_compiled(
            resident.branches(),
            std::slice::from_ref(&extra),
            &compiled,
            &opts,
        );
        let scratch = chase_to_universal_plan_compiled(
            &q_sub.clone().with_atom(extra.clone()),
            &compiled,
            &opts,
        );
        let seeds: Vec<(ConjunctiveQuery, Substitution)> = {
            let up = chase_to_universal_plan_compiled(&q_sub, &compiled, &opts);
            up.branches.into_iter().zip(up.renamings).collect()
        };
        let seeded = chase_branches_with_atoms_compiled(
            &seeds,
            std::slice::from_ref(&extra),
            "S",
            &compiled,
            &opts,
        );
        assert!(resumed.stats().completed && scratch.stats.completed && seeded.stats.completed);
        let resumed_q = &resumed.branch_queries("S")[0];
        assert_eq!(resumed_q.body.len(), scratch.primary().body.len());
        assert_eq!(resumed_q.body.len(), seeded.primary().body.len());
        use mars_cq::containment::containment_mapping;
        for other in [scratch.primary(), seeded.primary()] {
            assert!(containment_mapping(resumed_q, other).is_some());
            assert!(containment_mapping(other, resumed_q).is_some());
        }
        // The resident form converts to a universal plan with the same
        // naming scheme as the query-level API.
        let as_plan = resumed.into_universal_plan("S");
        assert_eq!(as_plan.branches[0].name, "S_up0");
        assert_eq!(as_plan.renamings.len(), as_plan.branches.len());
    }

    /// A resident seed is a true fixpoint resume: inserting nothing fires
    /// nothing (the freeze/thaw pair preserving warm indexes without
    /// rebuilds is unit-tested in `instance::tests`).
    #[test]
    fn resident_resume_is_a_fixpoint_resume() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let compiled = CompiledDeps::new(std::slice::from_ref(&ind));
        let opts = ChaseOptions::default();
        let resident = chase_to_resident_compiled(&q, &compiled, &opts);
        let extra = Atom::named("A", vec![t("y"), t("w")]);
        let resumed = chase_resident_with_atoms_compiled(
            resident.branches(),
            std::slice::from_ref(&extra),
            &compiled,
            &opts,
        );
        assert!(resumed.stats().completed);
        // A resume that inserts nothing fires nothing: the seed really is at
        // fixpoint and the dirty-cone restriction sees an empty delta.
        let noop = chase_resident_with_atoms_compiled(resident.branches(), &[], &compiled, &opts);
        assert!(noop.stats().completed);
        assert_eq!(noop.stats().applied_steps, 0, "fixpoint seed plus nothing fires nothing");
    }

    /// The per-branch renaming records EGD unifications, so atoms phrased
    /// over the original variables land on the surviving representatives.
    #[test]
    fn seeded_chase_applies_recorded_renaming() {
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("x"), t("y")]).with_body(vec![
            Atom::named("R", vec![t("k"), t("x")]),
            Atom::named("R", vec![t("k"), t("y")]),
        ]);
        let key = Ded::egd(
            "key",
            vec![Atom::named("R", vec![t("u"), t("p")]), Atom::named("R", vec![t("u"), t("q")])],
            t("p"),
            t("q"),
        );
        let up = chase_to_universal_plan(&q, std::slice::from_ref(&key), &ChaseOptions::default());
        assert_eq!(up.renamings.len(), 1);
        let seeds: Vec<(ConjunctiveQuery, Substitution)> =
            up.branches.iter().cloned().zip(up.renamings.iter().cloned()).collect();
        // `S(y)` references the unified-away variable; the renaming must map
        // it onto the representative that survived in the branch.
        let seeded = chase_branches_with_atoms(
            &seeds,
            &[Atom::named("S", vec![t("y")])],
            "S",
            &[key],
            &ChaseOptions::default(),
        );
        let plan = seeded.primary();
        let s_atom = plan.body.iter().find(|a| a.predicate.name() == "S").unwrap();
        assert_eq!(s_atom.args[0], plan.head[0], "S must mention the surviving head variable");
    }

    #[test]
    fn denial_fails_all_branches() {
        let q = ConjunctiveQuery::new("Q").with_body(vec![child(t("x"), t("x"))]);
        let denial = Ded::denial("no_self", vec![child(t("u"), t("u"))]);
        let up = chase_to_universal_plan(&q, &[denial], &ChaseOptions::default());
        assert!(up.branches.is_empty());
        assert_eq!(up.stats.failed_branches, 1);
    }

    #[test]
    fn disjunctive_dependency_splits_branches() {
        let d = Ded::disjunctive(
            "st",
            vec![Atom::named("R", vec![t("x")])],
            vec![
                Conjunct::atoms(vec![Atom::named("S", vec![t("x")])]),
                Conjunct::atoms(vec![Atom::named("T", vec![t("x")])]),
            ],
        );
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("a")])
            .with_body(vec![Atom::named("R", vec![t("a")])]);
        let up = chase_to_universal_plan(&q, &[d], &ChaseOptions::default());
        assert_eq!(up.branches.len(), 2);
        assert!(up.single().is_none());
        assert_eq!(up.total_atoms(), 4);
    }

    #[test]
    fn budget_stops_divergent_chase() {
        let d = Ded::tgd(
            "inf",
            vec![Atom::named("R", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("R", vec![t("y"), t("z")])],
        );
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("a")])
            .with_body(vec![Atom::named("R", vec![t("a"), t("b")])]);
        let opts = ChaseOptions { max_rounds: 4, ..Default::default() };
        let up = chase_to_universal_plan(&q, &[d], &opts);
        assert!(!up.stats.completed);
        assert!(!up.branches.is_empty());
    }

    #[test]
    fn view_atoms_enter_plan_only_when_semantics_allow() {
        // Without (ind), the view V(x,z) :- A(x,y), B(y,z) cannot be brought
        // into the chase of Q(x) :- A(x,y).
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let defq = ConjunctiveQuery::new("V").with_head(vec![t("x"), t("z")]).with_body(vec![
            Atom::named("A", vec![t("x"), t("y")]),
            Atom::named("B", vec![t("y"), t("z")]),
        ]);
        let (c_v, b_v) = view_dependencies("V", &defq);
        let up = chase_to_universal_plan(&q, &[c_v, b_v], &ChaseOptions::default());
        let plan = up.primary();
        assert!(plan.body.iter().all(|a| a.predicate.name() != "V"));
    }

    #[test]
    fn fresh_variables_do_not_collide() {
        // Two independent A-facts each trigger (ind): the two invented B
        // targets must be distinct variables.
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("x1"), t("x2")]).with_body(vec![
            Atom::named("A", vec![t("x1"), t("y1")]),
            Atom::named("A", vec![t("x2"), t("y2")]),
        ]);
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let up = chase_to_universal_plan(&q, &[ind], &ChaseOptions::default());
        let plan = up.primary();
        let b_atoms: Vec<&Atom> = plan.body.iter().filter(|a| a.predicate.name() == "B").collect();
        assert_eq!(b_atoms.len(), 2);
        assert_ne!(b_atoms[0].args[1], b_atoms[1].args[1]);
    }

    /// A universal plan with the wall-clock field zeroed: everything else
    /// must be bit-for-bit reproducible across join strategies and thread
    /// counts.
    fn plan_fingerprint(up: &UniversalPlan) -> String {
        let stats = ChaseStats { duration: Duration::default(), ..up.stats.clone() };
        format!("{:?} {:?} {:?}", up.branches, up.renamings, stats)
    }

    /// The byte-identical contract of the semi-naive joins: delta-seeded and
    /// naive full-join chases agree on every branch, renaming and statistic
    /// — including through EGD unifications (watermark resets) and resumed
    /// seeded chases.
    #[test]
    fn seminaive_and_naive_chase_are_byte_identical() {
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("x"), t("y")]).with_body(vec![
            Atom::named("R", vec![t("k"), t("x")]),
            Atom::named("R", vec![t("k"), t("y")]),
            Atom::named("A", vec![t("x"), t("y")]),
        ]);
        let key = Ded::egd(
            "key",
            vec![Atom::named("R", vec![t("u"), t("p")]), Atom::named("R", vec![t("u"), t("q")])],
            t("p"),
            t("q"),
        );
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let chain = Ded::tgd(
            "chain",
            vec![Atom::named("B", vec![t("x"), t("y")])],
            vec![],
            vec![Atom::named("C", vec![t("x"), t("y")])],
        );
        let deds = vec![key, ind, chain];
        let semi = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let naive = chase_to_universal_plan(&q, &deds, &ChaseOptions::default().with_naive_joins());
        assert_eq!(plan_fingerprint(&semi), plan_fingerprint(&naive));

        // Resumed chases (the backchase's memoization hook) must agree too —
        // this is where the delta watermarks seed from the inserted atoms.
        let seeds_semi: Vec<(ConjunctiveQuery, Substitution)> =
            semi.branches.iter().cloned().zip(semi.renamings.iter().cloned()).collect();
        let extra = Atom::named("A", vec![t("y"), t("w")]);
        let resumed_semi = chase_branches_with_atoms(
            &seeds_semi,
            std::slice::from_ref(&extra),
            "S",
            &deds,
            &ChaseOptions::default(),
        );
        let resumed_naive = chase_branches_with_atoms(
            &seeds_semi,
            std::slice::from_ref(&extra),
            "S",
            &deds,
            &ChaseOptions::default().with_naive_joins(),
        );
        assert_eq!(plan_fingerprint(&resumed_semi), plan_fingerprint(&resumed_naive));
    }

    /// The byte-identical contract of the adaptive join planner: the
    /// statistics-driven scan/probe choice must agree with the fixed
    /// threshold — at any threshold, including the degenerate always-probe
    /// and always-scan extremes — on every branch, renaming and statistic.
    #[test]
    fn adaptive_and_fixed_threshold_planning_are_byte_identical() {
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("x"), t("y")]).with_body(vec![
            Atom::named("R", vec![t("k"), t("x")]),
            Atom::named("R", vec![t("k"), t("y")]),
            Atom::named("A", vec![t("x"), t("y")]),
        ]);
        let key = Ded::egd(
            "key",
            vec![Atom::named("R", vec![t("u"), t("p")]), Atom::named("R", vec![t("u"), t("q")])],
            t("p"),
            t("q"),
        );
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let chain = Ded::tgd(
            "chain",
            vec![Atom::named("B", vec![t("x"), t("y")])],
            vec![],
            vec![Atom::named("C", vec![t("x"), t("y")])],
        );
        let deds = vec![key, ind, chain];
        let adaptive = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        for threshold in [0usize, JoinPlanner::DEFAULT_FIXED_THRESHOLD, usize::MAX] {
            let fixed = chase_to_universal_plan(
                &q,
                &deds,
                &ChaseOptions::default().with_fixed_scan_threshold(threshold),
            );
            assert_eq!(
                plan_fingerprint(&adaptive),
                plan_fingerprint(&fixed),
                "threshold = {threshold} must be byte-identical to adaptive planning"
            );
        }
        // The planner knob composes with naive joins.
        let naive_fixed = chase_to_universal_plan(
            &q,
            &deds,
            &ChaseOptions::default().with_naive_joins().with_fixed_scan_threshold(4),
        );
        assert_eq!(plan_fingerprint(&adaptive), plan_fingerprint(&naive_fixed));
    }

    /// The parallel branch worklist is deterministic: disjunctive DEDs split
    /// the chase into branch trees, and any thread count must produce a plan
    /// byte-identical to the sequential one.
    #[test]
    fn parallel_branch_worklist_is_byte_identical() {
        let split_st = Ded::disjunctive(
            "st",
            vec![Atom::named("R", vec![t("x")])],
            vec![
                Conjunct::atoms(vec![Atom::named("S", vec![t("x")])]),
                Conjunct::atoms(vec![Atom::named("T", vec![t("x")])]),
            ],
        );
        let split_uv = Ded::disjunctive(
            "uv",
            vec![Atom::named("S", vec![t("x")])],
            vec![
                Conjunct::atoms(vec![Atom::named("U", vec![t("x")])]),
                Conjunct::atoms(vec![Atom::named("V", vec![t("x")])]),
            ],
        );
        let grow = Ded::tgd(
            "grow",
            vec![Atom::named("T", vec![t("x")])],
            vec![v("y")],
            vec![Atom::named("W", vec![t("x"), t("y")])],
        );
        let deds = vec![split_st, split_uv, grow];
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("a"), t("b")])
            .with_body(vec![Atom::named("R", vec![t("a")]), Atom::named("R", vec![t("b")])]);
        let seq = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        assert!(seq.branches.len() > 2, "the setup must actually split");
        for threads in [2usize, 3, 8] {
            let par =
                chase_to_universal_plan(&q, &deds, &ChaseOptions::default().with_threads(threads));
            assert_eq!(
                plan_fingerprint(&seq),
                plan_fingerprint(&par),
                "threads = {threads} must be byte-identical to sequential"
            );
        }
        // And the thread knob composes with naive joins.
        let naive_par = chase_to_universal_plan(
            &q,
            &deds,
            &ChaseOptions::default().with_naive_joins().with_threads(4),
        );
        assert_eq!(plan_fingerprint(&seq), plan_fingerprint(&naive_par));
    }

    #[test]
    fn timeout_is_reported_as_incomplete() {
        let d = Ded::tgd(
            "inf",
            vec![Atom::named("R", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("R", vec![t("y"), t("z")])],
        );
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("a")])
            .with_body(vec![Atom::named("R", vec![t("a"), t("b")])]);
        let opts = ChaseOptions::default().with_timeout(Duration::from_millis(0));
        let up = chase_to_universal_plan(&q, &[d], &opts);
        assert!(!up.stats.completed);
        assert_eq!(up.stats.stop, Some(ChaseStop::Deadline));
    }

    /// Incomplete chases report which budget stopped them.
    #[test]
    fn stop_reason_distinguishes_budgets() {
        let d = Ded::tgd(
            "inf",
            vec![Atom::named("R", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("R", vec![t("y"), t("z")])],
        );
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("a")])
            .with_body(vec![Atom::named("R", vec![t("a"), t("b")])]);
        let rounds = chase_to_universal_plan(
            &q,
            std::slice::from_ref(&d),
            &ChaseOptions { max_rounds: 4, ..Default::default() },
        );
        assert_eq!(rounds.stats.stop, Some(ChaseStop::Rounds));
        let atoms = chase_to_universal_plan(
            &q,
            std::slice::from_ref(&d),
            &ChaseOptions { max_atoms: 2, ..Default::default() },
        );
        assert_eq!(atoms.stats.stop, Some(ChaseStop::Atoms));
        let complete = chase_to_universal_plan(
            &q,
            &[],
            &ChaseOptions { max_rounds: 4, max_atoms: 2, ..Default::default() },
        );
        assert!(complete.stats.completed);
        assert_eq!(complete.stats.stop, None);
    }

    /// Regression for the resumed-chase deadline hole: `timeout` restarts its
    /// clock on every run, so a deadline set before a resume used to be
    /// silently ignored by the thawed-seed resume path. The absolute
    /// `deadline` must stop the resumed chase exactly like a fresh one.
    #[test]
    fn expired_deadline_is_honored_on_resumed_chases() {
        let q = ConjunctiveQuery::new("Q")
            .with_head(vec![t("x")])
            .with_body(vec![Atom::named("A", vec![t("x"), t("y")])]);
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![v("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let compiled = CompiledDeps::new(std::slice::from_ref(&ind));
        // Seed chased to fixpoint without any deadline pressure.
        let resident = chase_to_resident_compiled(&q, &compiled, &ChaseOptions::default());
        assert!(resident.stats().completed);

        let expired = Instant::now() - Duration::from_secs(1);
        let extra = Atom::named("A", vec![t("y"), t("w")]);
        // The resident resume respects the pre-set absolute deadline...
        let resumed = chase_resident_with_atoms_compiled(
            resident.branches(),
            std::slice::from_ref(&extra),
            &compiled,
            &ChaseOptions::default().with_deadline(expired),
        );
        assert!(!resumed.stats().completed, "an already-expired deadline must stop the resume");
        assert_eq!(resumed.stats().stop, Some(ChaseStop::Deadline));
        assert_eq!(resumed.stats().applied_steps, 0);
        // ...and so does the re-parsing resume path.
        let up = chase_to_universal_plan_compiled(&q, &compiled, &ChaseOptions::default());
        let seeds: Vec<(ConjunctiveQuery, Substitution)> =
            up.branches.into_iter().zip(up.renamings).collect();
        let seeded = chase_branches_with_atoms_compiled(
            &seeds,
            std::slice::from_ref(&extra),
            "S",
            &compiled,
            &ChaseOptions::default().with_deadline(expired),
        );
        assert!(!seeded.stats.completed);
        assert_eq!(seeded.stats.stop, Some(ChaseStop::Deadline));
        // A generous deadline changes nothing: the resume completes and is
        // byte-identical to an undeadlined resume.
        let fut = Instant::now() + Duration::from_secs(3600);
        let bounded = chase_resident_with_atoms_compiled(
            resident.branches(),
            std::slice::from_ref(&extra),
            &compiled,
            &ChaseOptions::default().with_deadline(fut),
        );
        let unbounded = chase_resident_with_atoms_compiled(
            resident.branches(),
            std::slice::from_ref(&extra),
            &compiled,
            &ChaseOptions::default(),
        );
        assert!(bounded.stats().completed);
        assert_eq!(
            format!("{:?}", bounded.branch_queries("S")),
            format!("{:?}", unbounded.branch_queries("S"))
        );
    }
}
