//! XML-specific pruning of the universal plan and the atom reachability
//! graph (Section 3.2, criteria 1–3).
//!
//! * **Criterion 1**: a `desc(x,y)` atom that runs "parallel" to a chain of
//!   `child`/`desc` atoms from `x` to `y` is redundant and, in any reasonable
//!   (monotone) cost model, never part of the optimal reformulation — it is
//!   removed from the universal plan before the backchase.
//! * **Criteria 2–3**: subqueries whose navigation "jumps" (child/descendant
//!   steps that are not contiguous) or that never enter the document through
//!   the root or another valid entry point do not correspond to legal XQuery
//!   navigation and are never enumerated. Both criteria are implemented by
//!   traversing a directed *reachability graph* whose nodes are the atoms of
//!   the universal plan.

use mars_cq::{Atom, ConjunctiveQuery, Predicate, Term, Variable};
use std::collections::{HashMap, HashSet, VecDeque};

/// GReX navigation predicates (with or without a `#document` suffix) are the
/// ones subject to the navigation legality criteria; every other predicate
/// (base relations, materialized views, specialization relations) is a valid
/// entry point by itself.
fn grex_base_name(p: Predicate) -> &'static str {
    let name = p.name();
    match name.split_once('#') {
        Some((base, _)) => base,
        None => name,
    }
}

/// The variable(s) an atom *requires* to be already bound for its navigation
/// to be contiguous, and the variable(s) it *produces*.
fn atom_io(atom: &Atom) -> (Vec<Variable>, Vec<Variable>) {
    let vars: Vec<Option<Variable>> = atom.args.iter().map(|t| t.as_var()).collect();
    let var = |i: usize| -> Vec<Variable> { vars.get(i).copied().flatten().into_iter().collect() };
    match grex_base_name(atom.predicate) {
        // root(x): produces x, requires nothing — an entry point.
        "root" => (vec![], var(0)),
        // el(x): structural marker; requires the node, produces nothing new.
        "el" => (var(0), vec![]),
        // child(x,y) / desc(x,y): navigate from x to y.
        "child" | "desc" => (var(0), var(1)),
        // tag(x,t): requires the node; a tag test produces no new node.
        "tag" => (var(0), vec![]),
        // text(x,v), id(x,v): require the node, produce the value.
        "text" | "id" => (var(0), var(1)),
        // attr(x,name,v): requires the node, produces the value.
        "attr" => (var(0), var(2)),
        // Anything else (relations, views, specialization relations, Skolem
        // graphs) is an entry point producing all its variables.
        _ => (vec![], atom.variables().collect()),
    }
}

/// Is this atom a valid entry point into the data (criterion 3)?
pub fn is_entry_point(atom: &Atom) -> bool {
    atom_io(atom).0.is_empty()
}

/// Remove `desc` atoms that are parallel to a chain of `child`/`desc` atoms
/// (criterion 1). Reflexive `desc(x,x)` atoms are parallel to the empty chain
/// and are removed as well.
///
/// Removal is *iterative*: one atom is dropped at a time and reachability is
/// recomputed over the surviving edges. Judging every `desc` atom against the
/// full edge set and removing them in bulk is unsound — two `desc` atoms that
/// are each other's only alternative path would both be justified and both
/// removed, disconnecting navigation that some reformulation still needs (a
/// completeness loss, not just a missed optimization).
pub fn prune_parallel_desc(plan: &ConjunctiveQuery) -> ConjunctiveQuery {
    let is_nav = |a: &Atom| {
        let base = grex_base_name(a.predicate);
        (base == "desc" || base == "child") && a.arity() == 2
    };
    let mut keep = vec![true; plan.body.len()];

    let reachable_without = |from: Term, to: Term, skip: usize, keep: &[bool]| -> bool {
        if from == to {
            return true;
        }
        let mut adj: HashMap<Term, Vec<Term>> = HashMap::new();
        for (i, a) in plan.body.iter().enumerate() {
            if keep[i] && i != skip && is_nav(a) {
                adj.entry(a.args[0]).or_default().push(a.args[1]);
            }
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                return true;
            }
            if !seen.insert(cur) {
                continue;
            }
            if let Some(next) = adj.get(&cur) {
                queue.extend(next.iter().copied());
            }
        }
        false
    };

    let mut changed = true;
    while changed {
        changed = false;
        for (i, a) in plan.body.iter().enumerate() {
            if !keep[i] || grex_base_name(a.predicate) != "desc" || a.arity() != 2 {
                continue;
            }
            if reachable_without(a.args[0], a.args[1], i, &keep) {
                keep[i] = false;
                changed = true;
            }
        }
    }
    let body: Vec<Atom> =
        plan.body.iter().enumerate().filter(|(i, _)| keep[*i]).map(|(_, a)| a.clone()).collect();
    ConjunctiveQuery {
        name: plan.name.clone(),
        head: plan.head.clone(),
        body,
        inequalities: plan.inequalities.clone(),
    }
}

/// The atom reachability graph of a query: nodes are atom indices, with an
/// edge `a1 → a2` when `a1` produces a variable that `a2` requires. The
/// graph's roots are the entry-point atoms.
#[derive(Clone, Debug)]
pub struct ReachabilityGraph {
    /// For each atom, the variables it requires.
    requires: Vec<Vec<Variable>>,
    /// For each atom, the variables it produces.
    produces: Vec<Vec<Variable>>,
    /// Indices of entry-point atoms (criterion 3 roots).
    pub roots: Vec<usize>,
    /// Successor lists (atom index → atoms it enables).
    pub successors: Vec<Vec<usize>>,
}

impl ReachabilityGraph {
    /// Build the reachability graph of a query body.
    pub fn new(query: &ConjunctiveQuery) -> ReachabilityGraph {
        let n = query.body.len();
        let mut requires = Vec::with_capacity(n);
        let mut produces = Vec::with_capacity(n);
        for a in &query.body {
            let (r, p) = atom_io(a);
            requires.push(r);
            produces.push(p);
        }
        let roots: Vec<usize> = (0..n).filter(|&i| requires[i].is_empty()).collect();
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for (j, required) in requires.iter().enumerate() {
                if i == j {
                    continue;
                }
                if required.iter().any(|v| produces[i].contains(v)) {
                    successors[i].push(j);
                }
            }
        }
        ReachabilityGraph { requires, produces, roots, successors }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.requires.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.requires.is_empty()
    }

    /// Is the subset of atom indices a *legal* subquery body according to
    /// criteria 2–3? The subset must be *constructible*: starting from its
    /// entry points, every atom must become enabled (all required variables
    /// produced) by atoms added before it. This is strictly stronger than
    /// checking that requirements are produced *somewhere* in the subset —
    /// that weaker test accepts navigation cycles detached from any entry
    /// point, which no XQuery navigation can express and which the
    /// [`ReachabilityGraph::enabled`]-driven enumeration can never reach
    /// (the two must agree, or the backchase's seed/grow strategy and its
    /// legality filter would disagree about the search space).
    pub fn is_legal_subset(&self, subset: &[usize]) -> bool {
        if subset.is_empty() {
            return false;
        }
        let mut produced: HashSet<Variable> = HashSet::new();
        let mut added = vec![false; subset.len()];
        let mut remaining = subset.len();
        let mut progress = true;
        while progress && remaining > 0 {
            progress = false;
            for (k, &i) in subset.iter().enumerate() {
                if !added[k] && self.requires[i].iter().all(|v| produced.contains(v)) {
                    produced.extend(self.produces[i].iter().copied());
                    added[k] = true;
                    remaining -= 1;
                    progress = true;
                }
            }
        }
        remaining == 0
    }

    /// The atoms that become *enabled* (all required variables produced) by
    /// the given subset — candidates for growing the subset by one atom.
    pub fn enabled(&self, subset: &[usize]) -> Vec<usize> {
        let chosen: HashSet<usize> = subset.iter().copied().collect();
        let produced: HashSet<Variable> =
            subset.iter().flat_map(|&i| self.produces[i].iter().copied()).collect();
        (0..self.len())
            .filter(|i| !chosen.contains(i))
            .filter(|&i| self.requires[i].iter().all(|v| produced.contains(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::atom::builders::*;
    use mars_cq::{Atom, ConjunctiveQuery, Term};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    fn chain_query(n: usize) -> ConjunctiveQuery {
        // root(x1), child(x1,x2), ..., child(x_{n-1}, x_n)
        let mut body = vec![root(t("x1"))];
        for i in 1..n {
            body.push(child(t(&format!("x{i}")), t(&format!("x{}", i + 1))));
        }
        ConjunctiveQuery::new("chain").with_head(vec![t(&format!("x{n}"))]).with_body(body)
    }

    #[test]
    fn criterion_1_removes_parallel_desc() {
        // chain with the chase-added desc atoms: all desc parallel to child chains go away.
        let mut q = chain_query(4);
        q = q
            .with_atom(desc(t("x1"), t("x2")))
            .with_atom(desc(t("x1"), t("x3")))
            .with_atom(desc(t("x2"), t("x4")))
            .with_atom(desc(t("x2"), t("x2")));
        let pruned = prune_parallel_desc(&q);
        assert!(pruned.body.iter().all(|a| a.predicate.name() != "desc"));
        assert_eq!(pruned.body.len(), 4); // root + 3 child atoms
    }

    #[test]
    fn criterion_1_keeps_essential_desc() {
        // //a/b : root(r), desc(r,a), child(a,b) — the desc atom is the only
        // way to reach `a`, it must be kept.
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("b")]).with_body(vec![
            root(t("r")),
            desc(t("r"), t("a")),
            child(t("a"), t("b")),
        ]);
        let pruned = prune_parallel_desc(&q);
        assert_eq!(pruned.body.len(), 3);
    }

    #[test]
    fn criterion_1_uses_multi_edge_chains() {
        // desc(x,z) parallel to desc(x,y), child(y,z) is removed.
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("z")]).with_body(vec![
            root(t("x")),
            desc(t("x"), t("y")),
            child(t("y"), t("z")),
            desc(t("x"), t("z")),
        ]);
        let pruned = prune_parallel_desc(&q);
        assert_eq!(pruned.body.len(), 3);
        assert!(pruned.body.contains(&desc(t("x"), t("y"))));
        assert!(!pruned.body.contains(&desc(t("x"), t("z"))));
    }

    /// Regression (criterion 1): two `desc` atoms that are each other's only
    /// alternative path must not *both* be removed. Judged against the full
    /// edge set, `desc(x,y)` is parallel to `desc(x,z), child(z,y)` and
    /// `desc(x,z)` is parallel to `desc(x,y), child(y,z)` — bulk removal
    /// would disconnect both `y` and `z` from `x` and lose every
    /// reformulation that navigates through them.
    #[test]
    fn criterion_1_mutual_parallelism_keeps_connectivity() {
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("y"), t("z")]).with_body(vec![
            root(t("x")),
            desc(t("x"), t("y")),
            desc(t("x"), t("z")),
            child(t("y"), t("z")),
            child(t("z"), t("y")),
        ]);
        let pruned = prune_parallel_desc(&q);
        // y and z must still be reachable from x.
        let reaches = |target: Term| -> bool {
            let mut seen = vec![t("x")];
            let mut frontier = vec![t("x")];
            while let Some(cur) = frontier.pop() {
                for a in &pruned.body {
                    if (a.predicate.name() == "desc" || a.predicate.name() == "child")
                        && a.args[0] == cur
                        && !seen.contains(&a.args[1])
                    {
                        seen.push(a.args[1]);
                        frontier.push(a.args[1]);
                    }
                }
            }
            seen.contains(&target)
        };
        assert!(reaches(t("y")), "y disconnected: {pruned}");
        assert!(reaches(t("z")), "z disconnected: {pruned}");
    }

    /// Regression (criteria 2–3): a navigation cycle detached from the entry
    /// point satisfies the naive "requirements produced somewhere" test but
    /// is not constructible and must be rejected — `is_legal_subset` and the
    /// `enabled`-driven enumeration must agree on the search space.
    #[test]
    fn criteria_2_3_reject_detached_cycles() {
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("b")]).with_body(vec![
            root(t("r")),
            child(t("r"), t("a")),
            child(t("x"), t("y")),
            child(t("y"), t("x")),
        ]);
        let g = ReachabilityGraph::new(&q);
        assert!(g.is_legal_subset(&[0, 1]));
        assert!(!g.is_legal_subset(&[0, 1, 2, 3]), "detached cycle must be illegal");
        assert!(!g.is_legal_subset(&[2, 3]));
    }

    #[test]
    fn entry_points() {
        assert!(is_entry_point(&root(t("r"))));
        assert!(is_entry_point(&Atom::named("drugPrice", vec![t("d"), t("p")])));
        assert!(is_entry_point(&Atom::named("V3", vec![t("k"), t("b")])));
        assert!(!is_entry_point(&child(t("x"), t("y"))));
        assert!(!is_entry_point(&tag(t("x"), "a")));
    }

    #[test]
    fn legal_subsets_of_a_chain_are_prefixes() {
        // Paper: criteria 2-3 reduce the chain's subqueries from exponential
        // to O(n) — exactly the root-anchored prefixes.
        let q = chain_query(5);
        let g = ReachabilityGraph::new(&q);
        assert_eq!(g.roots, vec![0]);
        // Prefixes are legal.
        for k in 1..=5usize {
            let subset: Vec<usize> = (0..k).collect();
            assert!(g.is_legal_subset(&subset), "prefix of length {k} must be legal");
        }
        // The subquery {root(x1), child(x2,x3)} violates contiguity (criterion 2).
        assert!(!g.is_legal_subset(&[0, 2]));
        // The subquery {child(x1,x2), child(x2,x3)} has no entry point (criterion 3).
        assert!(!g.is_legal_subset(&[1, 2]));
        // Count all legal subsets by brute force: must be exactly n (the prefixes).
        let n = q.body.len();
        let mut legal = 0;
        for mask in 1u32..(1 << n) {
            let subset: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
            if g.is_legal_subset(&subset) {
                legal += 1;
            }
        }
        assert_eq!(legal, n);
    }

    #[test]
    fn enabled_atoms_grow_along_navigation() {
        let q = chain_query(4);
        let g = ReachabilityGraph::new(&q);
        // With nothing chosen, only the entry point (root) is enabled.
        assert_eq!(g.enabled(&[]), vec![0]);
        assert_eq!(g.enabled(&[0]), vec![1]);
        assert_eq!(g.enabled(&[0, 1]), vec![2]);
    }

    #[test]
    fn views_are_their_own_entry_points_in_the_graph() {
        let q = ConjunctiveQuery::new("Q").with_head(vec![t("k")]).with_body(vec![
            Atom::named("V1", vec![t("k"), t("b1"), t("b2")]),
            Atom::named("V2", vec![t("k"), t("b2"), t("b3")]),
            root(t("r")),
            child(t("r"), t("e")),
        ]);
        let g = ReachabilityGraph::new(&q);
        assert!(g.roots.contains(&0) && g.roots.contains(&1) && g.roots.contains(&2));
        assert!(g.is_legal_subset(&[0]));
        assert!(g.is_legal_subset(&[0, 1]));
        assert!(!g.is_legal_subset(&[3]));
        assert!(g.is_legal_subset(&[2, 3]));
    }
}
