//! The symbolic instance `Inst(Q)`.
//!
//! Section 3.1 of the paper: "we represent Q internally as a symbolic database
//! instance Inst(Q) consisting of the relations ... whose constants are the
//! variables of Q, and whose tuples are the atoms in Q's body". The chase then
//! becomes query evaluation over this instance.

use mars_cq::{Atom, ConjunctiveQuery, Predicate, Substitution, Term, Variable};
use std::collections::{HashMap, HashSet};

/// One relation of the symbolic instance: a deduplicated, insertion-ordered
/// set of tuples whose entries are [`Term`]s (variables act as constants).
#[derive(Clone, Debug, Default)]
pub struct Relation {
    tuples: Vec<Vec<Term>>,
    set: HashSet<Vec<Term>>,
}

impl Relation {
    /// Insert a tuple; returns `true` if it was new.
    pub fn insert(&mut self, tuple: Vec<Term>) -> bool {
        if self.set.contains(&tuple) {
            return false;
        }
        self.set.insert(tuple.clone());
        self.tuples.push(tuple);
        true
    }

    /// All tuples in insertion order.
    pub fn tuples(&self) -> &[Vec<Term>] {
        &self.tuples
    }

    /// Does the relation contain the tuple?
    pub fn contains(&self, tuple: &[Term]) -> bool {
        self.set.contains(tuple)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// The symbolic database instance associated with a query.
#[derive(Clone, Debug, Default)]
pub struct SymbolicInstance {
    relations: HashMap<Predicate, Relation>,
    atom_count: usize,
}

impl SymbolicInstance {
    /// The empty instance.
    pub fn new() -> SymbolicInstance {
        SymbolicInstance::default()
    }

    /// Build `Inst(Q)` from a query body.
    pub fn from_query(q: &ConjunctiveQuery) -> SymbolicInstance {
        let mut inst = SymbolicInstance::new();
        for atom in &q.body {
            inst.insert_atom(atom);
        }
        inst
    }

    /// Insert an atom as a tuple; returns `true` if it was new.
    pub fn insert_atom(&mut self, atom: &Atom) -> bool {
        let rel = self.relations.entry(atom.predicate).or_default();
        let added = rel.insert(atom.args.clone());
        if added {
            self.atom_count += 1;
        }
        added
    }

    /// Does the instance contain the atom (exactly)?
    pub fn contains_atom(&self, atom: &Atom) -> bool {
        self.relations.get(&atom.predicate).map(|r| r.contains(&atom.args)).unwrap_or(false)
    }

    /// The relation for a predicate (empty slice if absent).
    pub fn relation(&self, p: Predicate) -> &[Vec<Term>] {
        self.relations.get(&p).map(|r| r.tuples()).unwrap_or(&[])
    }

    /// All predicates present.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.relations.keys().copied()
    }

    /// Total number of atoms (tuples) in the instance.
    pub fn len(&self) -> usize {
        self.atom_count
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.atom_count == 0
    }

    /// All atoms, grouped by predicate (predicate iteration order is not
    /// deterministic; use [`SymbolicInstance::to_query`] for a stable order).
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out = Vec::with_capacity(self.atom_count);
        for (p, rel) in &self.relations {
            for t in rel.tuples() {
                out.push(Atom::new(*p, t.clone()));
            }
        }
        out
    }

    /// All terms appearing anywhere in the instance.
    pub fn terms(&self) -> HashSet<Term> {
        let mut out = HashSet::new();
        for rel in self.relations.values() {
            for t in rel.tuples() {
                out.extend(t.iter().copied());
            }
        }
        out
    }

    /// All variables appearing anywhere in the instance.
    pub fn variables(&self) -> HashSet<Variable> {
        self.terms().into_iter().filter_map(|t| t.as_var()).collect()
    }

    /// Convert back to a query with the given name, head and inequalities.
    /// Atoms are ordered by predicate name then argument order, which gives a
    /// deterministic universal plan.
    pub fn to_query(
        &self,
        name: &str,
        head: Vec<Term>,
        inequalities: Vec<(Term, Term)>,
    ) -> ConjunctiveQuery {
        let mut atoms = self.atoms();
        atoms.sort_by(|a, b| (a.predicate.name(), &a.args).cmp(&(b.predicate.name(), &b.args)));
        ConjunctiveQuery { name: name.to_string(), head, body: atoms, inequalities }
    }

    /// Apply a substitution to every tuple of the instance (used when an EGD
    /// unifies two terms). Returns the predicates whose relations actually
    /// changed (some tuple was rewritten) — the delta-driven chase
    /// re-examines only dependencies whose premises mention one of them.
    ///
    /// Relations no tuple of which mentions a substituted variable are left
    /// untouched (no rebuild, no allocation): unifications during a resumed
    /// back-chase typically affect a handful of atoms in an instance of
    /// hundreds, and rewriting everything dominated the chase profile.
    pub fn apply_substitution(&mut self, s: &Substitution) -> HashSet<Predicate> {
        let mut changed: HashSet<Predicate> = HashSet::new();
        let mut count = 0usize;
        for (p, rel) in self.relations.iter_mut() {
            let touched =
                rel.tuples.iter().any(|tuple| tuple.iter().any(|t| s.apply_term_deep(*t) != *t));
            if touched {
                changed.insert(*p);
                let mut rewritten = Relation::default();
                for tuple in &rel.tuples {
                    rewritten.insert(tuple.iter().map(|t| s.apply_term_deep(*t)).collect());
                }
                *rel = rewritten;
            }
            count += rel.len();
        }
        self.atom_count = count;
        changed
    }

    /// Next free variable disambiguator, used when inventing fresh
    /// (existential) variables during the chase.
    pub fn max_variable_index(&self) -> u32 {
        self.variables().into_iter().map(|v| v.index).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::atom::builders::*;
    use mars_cq::{ConjunctiveQuery, Term};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    fn sample_query() -> ConjunctiveQuery {
        ConjunctiveQuery::new("Q").with_head(vec![t("a")]).with_body(vec![
            root(t("r")),
            desc(t("r"), t("d")),
            child(t("d"), t("c")),
            tag(t("c"), "author"),
            text(t("c"), t("a")),
        ])
    }

    #[test]
    fn from_query_counts_atoms() {
        let inst = SymbolicInstance::from_query(&sample_query());
        assert_eq!(inst.len(), 5);
        assert_eq!(inst.relation(mars_cq::Predicate::new("child")).len(), 1);
        assert!(inst.contains_atom(&root(t("r"))));
        assert!(!inst.contains_atom(&root(t("x"))));
    }

    #[test]
    fn duplicate_atoms_are_deduplicated() {
        let mut inst = SymbolicInstance::new();
        assert!(inst.insert_atom(&child(t("a"), t("b"))));
        assert!(!inst.insert_atom(&child(t("a"), t("b"))));
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn to_query_round_trip_is_stable() {
        let q = sample_query();
        let inst = SymbolicInstance::from_query(&q);
        let back = inst.to_query("Q'", q.head.clone(), vec![]);
        assert_eq!(back.body.len(), q.body.len());
        // Every original atom survives.
        for a in &q.body {
            assert!(back.body.contains(a));
        }
        // Deterministic ordering.
        let again = inst.to_query("Q''", q.head.clone(), vec![]);
        assert_eq!(back.body, again.body);
    }

    #[test]
    fn substitution_application_merges_tuples() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&child(t("a"), t("x")));
        inst.insert_atom(&child(t("a"), t("y")));
        let mut s = Substitution::new();
        s.set(mars_cq::Variable::named("y"), t("x"));
        inst.apply_substitution(&s);
        assert_eq!(inst.len(), 1);
        assert!(inst.contains_atom(&child(t("a"), t("x"))));
    }

    #[test]
    fn terms_and_variables_enumeration() {
        let inst = SymbolicInstance::from_query(&sample_query());
        let vars = inst.variables();
        assert!(vars.contains(&mars_cq::Variable::named("r")));
        assert!(vars.contains(&mars_cq::Variable::named("a")));
        // "author" is a constant, not a variable.
        assert_eq!(vars.len(), 4);
        assert!(inst.terms().contains(&Term::constant_str("author")));
        assert_eq!(inst.max_variable_index(), 0);
    }

    #[test]
    fn empty_instance_behaviour() {
        let inst = SymbolicInstance::new();
        assert!(inst.is_empty());
        assert_eq!(inst.len(), 0);
        assert!(inst.atoms().is_empty());
        assert_eq!(inst.relation(mars_cq::Predicate::new("nothing")).len(), 0);
    }
}
