//! The symbolic instance `Inst(Q)`.
//!
//! Section 3.1 of the paper: "we represent Q internally as a symbolic database
//! instance Inst(Q) consisting of the relations ... whose constants are the
//! variables of Q, and whose tuples are the atoms in Q's body". The chase then
//! becomes query evaluation over this instance.
//!
//! Every relation carries *persistent* hash indexes keyed on column sets
//! ([`Relation::index`]): an index is built at most once per (relation,
//! column-set) pair and then maintained incrementally on insert, instead of
//! being rebuilt inside every premise evaluation. Only an EGD rewrite
//! ([`SymbolicInstance::apply_substitution`]) invalidates the indexes of the
//! relations it actually touches. The process-wide [`index_build_count`]
//! lets regression tests pin this contract down.
//!
//! Relations also maintain cheap **incremental statistics** — tuple counts,
//! exact per-column distinct counts ([`Relation::distinct_in_column`]) and a
//! per-column-set *scan-work ledger* ([`Relation::note_scan_work`]) — which
//! the adaptive join planner ([`crate::evaluate::JoinPlanner`]) reads at
//! evaluation time to resolve each join step to a filtered scan or an index
//! probe. Statistics are updated on the same paths that maintain the indexes
//! (insert updates them in place, an EGD rewrite rebuilds them with the
//! relation), so they are always exact, never sampled or stale.

use mars_cq::{Atom, ConjunctiveQuery, Predicate, Substitution, Term, Variable};
use std::cell::{Ref, RefCell};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of from-scratch column-index builds since process start.
///
/// Used by regression tests (`tests/engine_reuse.rs`) to verify that premise
/// evaluation reuses the persistent per-predicate indexes: evaluating the
/// same conjunction twice over an unchanged (or grown-by-insert) instance
/// must not rebuild anything.
static INDEX_BUILDS: AtomicUsize = AtomicUsize::new(0);

/// The process-wide column-index build count (see [`Relation::index`]).
pub fn index_build_count() -> usize {
    INDEX_BUILDS.load(Ordering::SeqCst)
}

/// A hash index over one column set: key terms (in column order) → indices of
/// the matching tuples, ascending in insertion order.
pub type ColumnIndex = HashMap<Vec<Term>, Vec<usize>>;

/// One relation of the symbolic instance: a deduplicated, insertion-ordered
/// set of tuples whose entries are [`Term`]s (variables act as constants).
#[derive(Clone, Debug, Default)]
pub struct Relation {
    tuples: Vec<Vec<Term>>,
    set: HashSet<Vec<Term>>,
    /// Persistent column-set indexes. Interior mutability lets evaluation
    /// (`&SymbolicInstance`) build an index lazily on first use; instances
    /// are never shared across threads (branches move between workers
    /// whole), so the `RefCell` borrows are all thread-local.
    indexes: RefCell<HashMap<Vec<usize>, ColumnIndex>>,
    /// From-scratch builds of this relation's indexes — the race-free
    /// (per-relation) counterpart of the process-wide [`index_build_count`],
    /// for tests that must not observe other tests' builds.
    builds: std::cell::Cell<usize>,
    /// Per-column distinct-term sets, maintained incrementally on insert
    /// (sized to the relation's arity at the first insert). `distinct[c].len()`
    /// is the *exact* number of distinct terms in column `c` — the
    /// cardinality statistic behind [`Relation::expected_matches`].
    distinct: Vec<HashSet<Term>>,
    /// Scan-work ledger: per column set, how many tuple inspections filtered
    /// scans have already spent where an index probe would have been
    /// preferred. The adaptive planner builds the index once the accumulated
    /// work amortizes the build (rent-or-buy); see
    /// [`crate::evaluate::JoinPlanner::Adaptive`].
    scan_work: RefCell<HashMap<Vec<usize>, usize>>,
}

impl Relation {
    /// Insert a tuple; returns `true` if it was new. Every existing column
    /// index absorbs the new tuple incrementally (no rebuild), and the
    /// per-column distinct statistics are updated in place.
    pub fn insert(&mut self, tuple: Vec<Term>) -> bool {
        if self.set.contains(&tuple) {
            return false;
        }
        let id = self.tuples.len();
        for (cols, index) in self.indexes.get_mut().iter_mut() {
            let key: Vec<Term> = cols.iter().map(|&c| tuple[c]).collect();
            index.entry(key).or_default().push(id);
        }
        if self.distinct.len() < tuple.len() {
            self.distinct.resize_with(tuple.len(), HashSet::new);
        }
        for (c, t) in tuple.iter().enumerate() {
            self.distinct[c].insert(*t);
        }
        self.set.insert(tuple.clone());
        self.tuples.push(tuple);
        true
    }

    /// All tuples in insertion order.
    pub fn tuples(&self) -> &[Vec<Term>] {
        &self.tuples
    }

    /// Does the relation contain the tuple?
    pub fn contains(&self, tuple: &[Term]) -> bool {
        self.set.contains(tuple)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The persistent hash index over `cols` (ascending column positions).
    /// Built from the current tuples on first use — counted by
    /// [`index_build_count`] — and maintained incrementally by
    /// [`Relation::insert`] afterwards.
    ///
    /// The returned guard holds a shared borrow of the index cache: callers
    /// must drop it before anything inserts into this relation (the chase
    /// never evaluates and inserts at the same moment, so in practice this
    /// only rules out holding the guard across a recursive step that could
    /// build another index of the *same* relation — copy the posting list
    /// out first).
    pub fn index(&self, cols: &[usize]) -> Ref<'_, ColumnIndex> {
        if !self.indexes.borrow().contains_key(cols) {
            INDEX_BUILDS.fetch_add(1, Ordering::SeqCst);
            self.builds.set(self.builds.get() + 1);
            let mut index = ColumnIndex::new();
            for (id, tuple) in self.tuples.iter().enumerate() {
                let key: Vec<Term> = cols.iter().map(|&c| tuple[c]).collect();
                index.entry(key).or_default().push(id);
            }
            self.indexes.borrow_mut().insert(cols.to_vec(), index);
        }
        Ref::map(self.indexes.borrow(), |m| m.get(cols).expect("index just ensured"))
    }

    /// Number of column indexes currently cached (test introspection).
    pub fn cached_index_count(&self) -> usize {
        self.indexes.borrow().len()
    }

    /// From-scratch index builds performed by *this relation* (test
    /// introspection; unlike [`index_build_count`] it cannot be perturbed
    /// by tests running on parallel threads).
    pub fn index_builds(&self) -> usize {
        self.builds.get()
    }

    /// Is an index over exactly these columns already cached? The adaptive
    /// planner treats a cached index as free to probe (its build cost is
    /// sunk), so this changes the scan/probe break-even point.
    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.indexes.borrow().contains_key(cols)
    }

    /// Exact number of distinct terms in column `col` (0 for an empty
    /// relation or an out-of-arity column). Maintained incrementally by
    /// [`Relation::insert`]; rebuilt with the relation on an EGD rewrite.
    pub fn distinct_in_column(&self, col: usize) -> usize {
        self.distinct.get(col).map(|s| s.len()).unwrap_or(0)
    }

    /// Distinct estimate for a *composite* key over `cols`: the maximum of
    /// the per-column distinct counts, clamped to `[1, len]`. A composite key
    /// has at least as many distinct values as its most selective column, so
    /// this is a conservative (under-)estimate that errs toward predicting
    /// more matches per probe — i.e. toward scanning — never toward building
    /// an index that cannot pay off.
    pub fn distinct_for_columns(&self, cols: &[usize]) -> usize {
        cols.iter()
            .map(|&c| self.distinct_in_column(c))
            .max()
            .unwrap_or(0)
            .clamp(1, self.len().max(1))
    }

    /// Expected number of tuples matching one probe key over `cols` within a
    /// window of `window` tuples, assuming keys are uniformly distributed:
    /// `⌈window / distinct(cols)⌉`.
    pub fn expected_matches(&self, cols: &[usize], window: usize) -> usize {
        window.div_ceil(self.distinct_for_columns(cols))
    }

    /// Record `work` tuple inspections spent by a filtered scan over `cols`
    /// where an index probe would have been preferred had the index existed
    /// (the adaptive planner's rent-or-buy ledger).
    pub fn note_scan_work(&self, cols: &[usize], work: usize) {
        *self.scan_work.borrow_mut().entry(cols.to_vec()).or_default() += work;
    }

    /// Accumulated scan work over `cols` (see [`Relation::note_scan_work`]).
    pub fn scan_work(&self, cols: &[usize]) -> usize {
        self.scan_work.borrow().get(cols).copied().unwrap_or(0)
    }

    /// Arity of the relation as observed from its tuples (0 while empty —
    /// arity is fixed at the first insert).
    pub fn arity(&self) -> usize {
        self.distinct.len()
    }
}

/// The chase side of the shared statistics catalog (`mars_cost`): the
/// symbolic instance exposes its incrementally maintained exact counters —
/// tuple counts, per-column distincts, scan-work ledgers — through the same
/// trait the storage layer implements, so the physical planner and the cost
/// estimators read either substrate interchangeably. Maintenance stays here
/// (insert updates in place, EGD rewrites rebuild); the trait is read-only.
impl mars_cost::StatisticsCatalog for SymbolicInstance {
    fn tuple_count(&self, relation: Predicate) -> usize {
        self.relation_len(relation)
    }

    fn column_count(&self, relation: Predicate) -> usize {
        self.relation_data(relation).map(|r| r.arity()).unwrap_or(0)
    }

    fn distinct_in_column(&self, relation: Predicate, col: usize) -> usize {
        self.relation_data(relation).map(|r| r.distinct_in_column(col)).unwrap_or(0)
    }

    fn distinct_for_columns(&self, relation: Predicate, cols: &[usize]) -> usize {
        self.relation_data(relation).map(|r| r.distinct_for_columns(cols)).unwrap_or(1)
    }

    fn expected_matches(&self, relation: Predicate, cols: &[usize], window: usize) -> usize {
        self.relation_data(relation).map(|r| r.expected_matches(cols, window)).unwrap_or(window)
    }

    fn scan_work(&self, relation: Predicate, cols: &[usize]) -> usize {
        self.relation_data(relation).map(|r| r.scan_work(cols)).unwrap_or(0)
    }
}

/// The symbolic database instance associated with a query.
#[derive(Clone, Debug, Default)]
pub struct SymbolicInstance {
    relations: HashMap<Predicate, Relation>,
    atom_count: usize,
    max_var: u32,
}

impl SymbolicInstance {
    /// The empty instance.
    pub fn new() -> SymbolicInstance {
        SymbolicInstance::default()
    }

    /// Build `Inst(Q)` from a query body.
    pub fn from_query(q: &ConjunctiveQuery) -> SymbolicInstance {
        let mut inst = SymbolicInstance::new();
        for atom in &q.body {
            inst.insert_atom(atom);
        }
        inst
    }

    /// Insert an atom as a tuple; returns `true` if it was new.
    pub fn insert_atom(&mut self, atom: &Atom) -> bool {
        let rel = self.relations.entry(atom.predicate).or_default();
        let added = rel.insert(atom.args.clone());
        if added {
            self.atom_count += 1;
            for t in &atom.args {
                if let Term::Var(v) = t {
                    self.max_var = self.max_var.max(v.index);
                }
            }
        }
        added
    }

    /// Does the instance contain the atom (exactly)?
    pub fn contains_atom(&self, atom: &Atom) -> bool {
        self.relations.get(&atom.predicate).map(|r| r.contains(&atom.args)).unwrap_or(false)
    }

    /// The relation for a predicate (empty slice if absent).
    pub fn relation(&self, p: Predicate) -> &[Vec<Term>] {
        self.relations.get(&p).map(|r| r.tuples()).unwrap_or(&[])
    }

    /// The full relation object (tuples + persistent indexes) for a
    /// predicate, if present.
    pub fn relation_data(&self, p: Predicate) -> Option<&Relation> {
        self.relations.get(&p)
    }

    /// Number of tuples of a predicate (0 if absent). The semi-naive chase
    /// uses relation lengths as delta watermarks: tuples at index ≥ the
    /// watermark are the delta.
    pub fn relation_len(&self, p: Predicate) -> usize {
        self.relations.get(&p).map(|r| r.len()).unwrap_or(0)
    }

    /// Width of the delta of predicate `p` relative to a watermark: the
    /// number of tuples inserted since the watermark was taken. This is the
    /// statistic that makes delta join windows cheap to size without
    /// touching the tuples themselves.
    pub fn delta_width(&self, p: Predicate, watermark: usize) -> usize {
        self.relation_len(p).saturating_sub(watermark)
    }

    /// All predicates present.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.relations.keys().copied()
    }

    /// Total number of atoms (tuples) in the instance.
    pub fn len(&self) -> usize {
        self.atom_count
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.atom_count == 0
    }

    /// All atoms, grouped by predicate (predicate iteration order is not
    /// deterministic; use [`SymbolicInstance::to_query`] for a stable order).
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out = Vec::with_capacity(self.atom_count);
        for (p, rel) in &self.relations {
            for t in rel.tuples() {
                out.push(Atom::new(*p, t.clone()));
            }
        }
        out
    }

    /// All terms appearing anywhere in the instance.
    pub fn terms(&self) -> HashSet<Term> {
        let mut out = HashSet::new();
        for rel in self.relations.values() {
            for t in rel.tuples() {
                out.extend(t.iter().copied());
            }
        }
        out
    }

    /// All variables appearing anywhere in the instance.
    pub fn variables(&self) -> HashSet<Variable> {
        self.terms().into_iter().filter_map(|t| t.as_var()).collect()
    }

    /// Convert back to a query with the given name, head and inequalities.
    /// Atoms are ordered by predicate name then argument order, which gives a
    /// deterministic universal plan.
    pub fn to_query(
        &self,
        name: &str,
        head: Vec<Term>,
        inequalities: Vec<(Term, Term)>,
    ) -> ConjunctiveQuery {
        let mut atoms = self.atoms();
        atoms.sort_by(|a, b| (a.predicate.name(), &a.args).cmp(&(b.predicate.name(), &b.args)));
        ConjunctiveQuery { name: name.to_string(), head, body: atoms, inequalities }
    }

    /// Apply a substitution to every tuple of the instance (used when an EGD
    /// unifies two terms). Returns the predicates whose relations actually
    /// changed (some tuple was rewritten) — the delta-driven chase
    /// re-examines only dependencies whose premises mention one of them.
    ///
    /// Relations no tuple of which mentions a substituted variable are left
    /// untouched (no rebuild, no allocation, cached column indexes survive):
    /// unifications during a resumed back-chase typically affect a handful of
    /// atoms in an instance of hundreds, and rewriting everything dominated
    /// the chase profile. Rewritten relations start over with empty index
    /// caches (tuple positions change, so the old postings are meaningless).
    pub fn apply_substitution(&mut self, s: &Substitution) -> HashSet<Predicate> {
        let mut changed: HashSet<Predicate> = HashSet::new();
        let mut count = 0usize;
        for (p, rel) in self.relations.iter_mut() {
            let touched =
                rel.tuples.iter().any(|tuple| tuple.iter().any(|t| s.apply_term_deep(*t) != *t));
            if touched {
                changed.insert(*p);
                let mut rewritten = Relation::default();
                for tuple in &rel.tuples {
                    rewritten.insert(tuple.iter().map(|t| s.apply_term_deep(*t)).collect());
                }
                *rel = rewritten;
            }
            count += rel.len();
        }
        self.atom_count = count;
        // A substitution can erase the highest-indexed variable, so the
        // cached maximum is recomputed from the rewritten relations.
        self.max_var = 0;
        for rel in self.relations.values() {
            for tuple in rel.tuples() {
                for t in tuple {
                    if let Term::Var(v) = t {
                        self.max_var = self.max_var.max(v.index);
                    }
                }
            }
        }
        changed
    }

    /// Next free variable disambiguator, used when inventing fresh
    /// (existential) variables during the chase. Maintained incrementally on
    /// insertion (and recomputed on substitution), so reading it is free —
    /// resumed chases consult it per seed branch.
    pub fn max_variable_index(&self) -> u32 {
        self.max_var
    }

    /// Freeze the instance into an immutable, thread-shareable snapshot that
    /// keeps the warm state — cached column indexes, distinct statistics and
    /// the scan-work ledgers — alongside the tuples. The inverse is
    /// [`FrozenInstance::thaw`].
    pub fn freeze(self) -> FrozenInstance {
        let relations = self
            .relations
            .into_iter()
            .map(|(p, rel)| {
                (
                    p,
                    FrozenRelation {
                        tuples: rel.tuples,
                        set: rel.set,
                        indexes: rel.indexes.into_inner(),
                        builds: rel.builds.get(),
                        distinct: rel.distinct,
                        scan_work: rel.scan_work.into_inner(),
                    },
                )
            })
            .collect();
        FrozenInstance { relations, atom_count: self.atom_count, max_var: self.max_var }
    }
}

/// An immutable snapshot of one [`Relation`]: the same tuples, cached column
/// indexes, distinct statistics and scan-work ledger, but in plain containers
/// with no interior mutability — so the snapshot is `Sync` and can be shared
/// by reference across the backchase worker threads.
#[derive(Clone, Debug)]
struct FrozenRelation {
    tuples: Vec<Vec<Term>>,
    set: HashSet<Vec<Term>>,
    indexes: HashMap<Vec<usize>, ColumnIndex>,
    builds: usize,
    distinct: Vec<HashSet<Term>>,
    scan_work: HashMap<Vec<usize>, usize>,
}

/// An immutable, thread-shareable snapshot of a [`SymbolicInstance`].
///
/// Freezing preserves everything the chase warmed up — persistent column
/// indexes, exact distinct statistics and the adaptive planner's scan-work
/// ledgers — so a back-chase that resumes from a frozen seed starts with hot
/// access paths instead of re-deriving them from a re-parsed query. Thawing
/// restores a fully live [`SymbolicInstance`] without counting any index
/// (re)build: the indexes are copied, not reconstructed.
#[derive(Clone, Debug, Default)]
pub struct FrozenInstance {
    relations: HashMap<Predicate, FrozenRelation>,
    atom_count: usize,
    max_var: u32,
}

impl FrozenInstance {
    /// Restore a live instance from the snapshot. Cached indexes, statistics
    /// and scan ledgers carry over verbatim; nothing is rebuilt and no build
    /// counter (process-wide or per-relation) advances.
    pub fn thaw(&self) -> SymbolicInstance {
        let relations = self
            .relations
            .iter()
            .map(|(p, rel)| {
                (
                    *p,
                    Relation {
                        tuples: rel.tuples.clone(),
                        set: rel.set.clone(),
                        indexes: RefCell::new(rel.indexes.clone()),
                        builds: std::cell::Cell::new(rel.builds),
                        distinct: rel.distinct.clone(),
                        scan_work: RefCell::new(rel.scan_work.clone()),
                    },
                )
            })
            .collect();
        SymbolicInstance { relations, atom_count: self.atom_count, max_var: self.max_var }
    }

    /// Total number of atoms (tuples) in the snapshot.
    pub fn len(&self) -> usize {
        self.atom_count
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.atom_count == 0
    }

    /// All predicates present (iteration order is not deterministic; use
    /// [`FrozenInstance::sorted_predicates`] for a stable order).
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.relations.keys().copied()
    }

    /// Predicates present, sorted by name — the canonical order for
    /// assembling deterministic atom lists without the per-atom sort of
    /// [`FrozenInstance::to_query`] (tuples keep their insertion order
    /// within each predicate, which is what lets a resumed chase branch be
    /// compared prefix-wise against its seed).
    pub fn sorted_predicates(&self) -> Vec<Predicate> {
        let mut ps: Vec<Predicate> = self.relations.keys().copied().collect();
        ps.sort_by(|a, b| a.name().cmp(b.name()));
        ps
    }

    /// Tuples of one predicate in insertion order (empty if absent).
    pub fn relation(&self, p: Predicate) -> &[Vec<Term>] {
        self.relations.get(&p).map(|r| r.tuples.as_slice()).unwrap_or(&[])
    }

    /// Convert the snapshot to a query with the given name, head and
    /// inequalities — same deterministic atom order as
    /// [`SymbolicInstance::to_query`].
    pub fn to_query(
        &self,
        name: &str,
        head: Vec<Term>,
        inequalities: Vec<(Term, Term)>,
    ) -> ConjunctiveQuery {
        let mut atoms = Vec::with_capacity(self.atom_count);
        for (p, rel) in &self.relations {
            for t in &rel.tuples {
                atoms.push(Atom::new(*p, t.clone()));
            }
        }
        atoms.sort_by(|a, b| (a.predicate.name(), &a.args).cmp(&(b.predicate.name(), &b.args)));
        ConjunctiveQuery { name: name.to_string(), head, body: atoms, inequalities }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::atom::builders::*;
    use mars_cq::{ConjunctiveQuery, Term};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    fn sample_query() -> ConjunctiveQuery {
        ConjunctiveQuery::new("Q").with_head(vec![t("a")]).with_body(vec![
            root(t("r")),
            desc(t("r"), t("d")),
            child(t("d"), t("c")),
            tag(t("c"), "author"),
            text(t("c"), t("a")),
        ])
    }

    #[test]
    fn from_query_counts_atoms() {
        let inst = SymbolicInstance::from_query(&sample_query());
        assert_eq!(inst.len(), 5);
        assert_eq!(inst.relation(mars_cq::Predicate::new("child")).len(), 1);
        assert!(inst.contains_atom(&root(t("r"))));
        assert!(!inst.contains_atom(&root(t("x"))));
    }

    #[test]
    fn duplicate_atoms_are_deduplicated() {
        let mut inst = SymbolicInstance::new();
        assert!(inst.insert_atom(&child(t("a"), t("b"))));
        assert!(!inst.insert_atom(&child(t("a"), t("b"))));
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn to_query_round_trip_is_stable() {
        let q = sample_query();
        let inst = SymbolicInstance::from_query(&q);
        let back = inst.to_query("Q'", q.head.clone(), vec![]);
        assert_eq!(back.body.len(), q.body.len());
        // Every original atom survives.
        for a in &q.body {
            assert!(back.body.contains(a));
        }
        // Deterministic ordering.
        let again = inst.to_query("Q''", q.head.clone(), vec![]);
        assert_eq!(back.body, again.body);
    }

    #[test]
    fn substitution_application_merges_tuples() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&child(t("a"), t("x")));
        inst.insert_atom(&child(t("a"), t("y")));
        let mut s = Substitution::new();
        s.set(mars_cq::Variable::named("y"), t("x"));
        inst.apply_substitution(&s);
        assert_eq!(inst.len(), 1);
        assert!(inst.contains_atom(&child(t("a"), t("x"))));
    }

    #[test]
    fn terms_and_variables_enumeration() {
        let inst = SymbolicInstance::from_query(&sample_query());
        let vars = inst.variables();
        assert!(vars.contains(&mars_cq::Variable::named("r")));
        assert!(vars.contains(&mars_cq::Variable::named("a")));
        // "author" is a constant, not a variable.
        assert_eq!(vars.len(), 4);
        assert!(inst.terms().contains(&Term::constant_str("author")));
        assert_eq!(inst.max_variable_index(), 0);
    }

    #[test]
    fn empty_instance_behaviour() {
        let inst = SymbolicInstance::new();
        assert!(inst.is_empty());
        assert_eq!(inst.len(), 0);
        assert!(inst.atoms().is_empty());
        assert_eq!(inst.relation(mars_cq::Predicate::new("nothing")).len(), 0);
    }

    #[test]
    fn column_index_probes_and_is_maintained_on_insert() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&child(t("a"), t("b")));
        inst.insert_atom(&child(t("a"), t("c")));
        inst.insert_atom(&child(t("d"), t("e")));
        let p = mars_cq::Predicate::new("child");

        // Build counts are asserted through the race-free per-relation
        // counter; the process-wide `index_build_count` is exercised by the
        // serialized tests in tests/engine_reuse.rs.
        {
            let rel = inst.relation_data(p).unwrap();
            let idx = rel.index(&[0]);
            assert_eq!(idx.get(&vec![t("a")]), Some(&vec![0, 1]));
            assert_eq!(idx.get(&vec![t("d")]), Some(&vec![2]));
            assert!(idx.get(&vec![t("z")]).is_none());
        }
        assert_eq!(inst.relation_data(p).unwrap().index_builds(), 1, "one build per column set");

        // Insert maintains the cached index incrementally — no rebuild.
        inst.insert_atom(&child(t("a"), t("f")));
        {
            let rel = inst.relation_data(p).unwrap();
            let idx = rel.index(&[0]);
            assert_eq!(idx.get(&vec![t("a")]), Some(&vec![0, 1, 3]));
        }
        assert_eq!(
            inst.relation_data(p).unwrap().index_builds(),
            1,
            "insert must not rebuild the index"
        );

        // A second column set is a second (counted) build; re-requesting
        // either set afterwards builds nothing.
        {
            let rel = inst.relation_data(p).unwrap();
            let idx01 = rel.index(&[0, 1]);
            assert_eq!(idx01.get(&vec![t("a"), t("f")]), Some(&vec![3]));
        }
        {
            let rel = inst.relation_data(p).unwrap();
            let _ = rel.index(&[0]);
            let _ = rel.index(&[0, 1]);
            assert_eq!(rel.cached_index_count(), 2);
            assert_eq!(rel.index_builds(), 2);
        }
    }

    /// Distinct estimates are exact and maintained incrementally across
    /// inserts (duplicates included).
    #[test]
    fn distinct_estimates_track_inserts() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&child(t("a"), t("x")));
        inst.insert_atom(&child(t("a"), t("y")));
        inst.insert_atom(&child(t("b"), t("x")));
        let p = mars_cq::Predicate::new("child");
        let rel = inst.relation_data(p).unwrap();
        assert_eq!(rel.distinct_in_column(0), 2, "a, b");
        assert_eq!(rel.distinct_in_column(1), 2, "x, y");
        assert_eq!(rel.distinct_for_columns(&[0, 1]), 2, "composite = max of columns");
        assert_eq!(rel.expected_matches(&[0], 3), 2, "ceil(3 / 2)");
        // Out-of-arity columns and duplicates are handled.
        assert_eq!(rel.distinct_in_column(7), 0);
        inst.insert_atom(&child(t("a"), t("x"))); // duplicate: no change
        inst.insert_atom(&child(t("c"), t("x")));
        let rel = inst.relation_data(p).unwrap();
        assert_eq!(rel.distinct_in_column(0), 3);
        assert_eq!(rel.distinct_in_column(1), 2);
        // The delta-width statistic is the growth past a watermark.
        assert_eq!(inst.delta_width(p, 3), 1);
        assert_eq!(inst.delta_width(p, 9), 0);
        assert_eq!(inst.delta_width(mars_cq::Predicate::new("absent"), 0), 0);
    }

    /// An EGD rewrite rebuilds the touched relation — and with it the
    /// distinct statistics, which must reflect the merged terms exactly
    /// (stale statistics would mis-price every later scan/probe choice).
    #[test]
    fn distinct_estimates_survive_egd_rewrites() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&child(t("a"), t("x")));
        inst.insert_atom(&child(t("b"), t("y")));
        inst.insert_atom(&child(t("c"), t("y")));
        let p = mars_cq::Predicate::new("child");
        assert_eq!(inst.relation_data(p).unwrap().distinct_in_column(1), 2);

        let mut s = Substitution::new();
        s.set(mars_cq::Variable::named("x"), t("y"));
        inst.apply_substitution(&s);
        let rel = inst.relation_data(p).unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.distinct_in_column(1), 1, "x merged into y");
        assert_eq!(rel.distinct_in_column(0), 3, "column 0 untouched by the unification");
        // The scan-work ledger restarts with the rewritten relation.
        assert_eq!(rel.scan_work(&[1]), 0);
    }

    /// The scan-work ledger accrues per column set and is independent across
    /// sets — the adaptive planner's rent-or-buy bookkeeping.
    #[test]
    fn scan_work_ledger_accrues_per_column_set() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&child(t("a"), t("x")));
        let rel = inst.relation_data(mars_cq::Predicate::new("child")).unwrap();
        assert_eq!(rel.scan_work(&[0]), 0);
        rel.note_scan_work(&[0], 5);
        rel.note_scan_work(&[0], 7);
        rel.note_scan_work(&[1], 2);
        assert_eq!(rel.scan_work(&[0]), 12);
        assert_eq!(rel.scan_work(&[1]), 2);
        assert_eq!(rel.scan_work(&[0, 1]), 0);
    }

    /// Freeze/thaw is the resident-reuse contract: a thawed instance carries
    /// the frozen one's warm indexes, statistics and scan ledgers verbatim —
    /// no index is rebuilt and the build counters do not move.
    #[test]
    fn freeze_thaw_preserves_indexes_without_rebuilds() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&child(t("a"), t("x")));
        inst.insert_atom(&child(t("a"), t("y")));
        inst.insert_atom(&child(t("b"), t("x")));
        let p = mars_cq::Predicate::new("child");
        let _ = inst.relation_data(p).unwrap().index(&[0]);
        inst.relation_data(p).unwrap().note_scan_work(&[1], 9);
        assert_eq!(inst.relation_data(p).unwrap().index_builds(), 1);

        let frozen = inst.freeze();
        assert_eq!(frozen.len(), 3);
        assert!(!frozen.is_empty());
        let thawed = frozen.thaw();
        assert_eq!(thawed.len(), 3);
        let rel = thawed.relation_data(p).unwrap();
        // The cached index came across as data: probing it is not a build.
        assert!(rel.has_index(&[0]));
        assert_eq!(rel.index_builds(), 1, "thaw copies indexes, it does not rebuild them");
        assert_eq!(rel.index(&[0]).get(&vec![t("a")]), Some(&vec![0, 1]));
        assert_eq!(rel.index_builds(), 1);
        // Statistics and the scan ledger survive too.
        assert_eq!(rel.distinct_in_column(0), 2);
        assert_eq!(rel.scan_work(&[1]), 9);
        // The frozen form converts to the same deterministic query.
        let q1 = frozen.to_query("Q", vec![], vec![]);
        let q2 = thawed.to_query("Q", vec![], vec![]);
        assert_eq!(q1.body, q2.body);
    }

    #[test]
    fn rewrite_drops_indexes_of_touched_relations_only() {
        let mut inst = SymbolicInstance::new();
        inst.insert_atom(&child(t("a"), t("x")));
        inst.insert_atom(&tag(t("n"), "book"));
        let child_p = mars_cq::Predicate::new("child");
        let tag_p = mars_cq::Predicate::new("tag");
        let _ = inst.relation_data(child_p).unwrap().index(&[0]);
        let _ = inst.relation_data(tag_p).unwrap().index(&[1]);

        let mut s = Substitution::new();
        s.set(mars_cq::Variable::named("x"), t("y"));
        let changed = inst.apply_substitution(&s);
        assert!(changed.contains(&child_p));
        assert!(!changed.contains(&tag_p));
        // The rewritten relation starts with an empty index cache; the
        // untouched relation keeps its cached index.
        assert_eq!(inst.relation_data(child_p).unwrap().cached_index_count(), 0);
        assert_eq!(inst.relation_data(tag_p).unwrap().cached_index_count(), 1);
    }
}
