//! Compiled constraints.
//!
//! Constraints are compiled once, when read into the system (Section 3.1):
//! the premise becomes a join plan evaluated over the symbolic instance and
//! each conclusion disjunct becomes the probe side of a semijoin used for the
//! extension check.
//!
//! [`CompiledDeps`] packages the full dependency set in its chase-ready form
//! (closure-shortcut detection, EGD-priority ordering, per-DED compilation)
//! so that a `Mars` instance — or any other long-lived engine — compiles the
//! set **once** and shares it across every chase, back-chase, branch and
//! query block via `Arc`. Before this type existed every chase recompiled
//! the dependency set from scratch, which dominated the backchase hot loop.

use crate::evaluate::{
    evaluate_bindings_delta_ordered, evaluate_bindings_ordered, order_atoms, satisfiable_ordered,
    JoinPlanner,
};
use crate::instance::SymbolicInstance;
use crate::shortcut::{detect_closure_constraints, ClosureConstraints};
use mars_cq::{Atom, Conjunct, Ded, Predicate, Substitution, Term, Variable};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A compiled conclusion disjunct.
#[derive(Clone, Debug)]
pub struct CompiledConclusion {
    /// The original conjunct.
    pub conjunct: Conjunct,
    /// True if the conjunct has no atoms (pure equality / EGD component).
    pub is_pure_equality: bool,
    /// Precompiled semijoin atom order for the extension check. The
    /// satisfiability search is entered with the premise variables (and any
    /// equality-forced existentials) bound, and only the bound *set* steers
    /// the ordering heuristic — so the order is computed once here instead
    /// of per blocked test, the chase's highest-volume call. The order can
    /// never change the boolean answer, only the search cost.
    order: Vec<usize>,
}

impl CompiledConclusion {
    fn new(conjunct: &Conjunct, premise: &[Atom]) -> CompiledConclusion {
        // Variables bound when the extension check runs: every premise
        // variable (the homomorphism binds all of them) plus variables a
        // conclusion equality may force a binding for. Over-approximating
        // the bound set only affects ordering quality, never soundness.
        let mut bound: Vec<Variable> = premise.iter().flat_map(|a| a.variables()).collect();
        for (a, b) in &conjunct.equalities {
            bound.extend(a.as_var());
            bound.extend(b.as_var());
        }
        CompiledConclusion {
            is_pure_equality: conjunct.atoms.is_empty(),
            order: order_atoms(&conjunct.atoms, &bound),
            conjunct: conjunct.clone(),
        }
    }

    /// Does the homomorphism `h` (from the owning DED's premise into `inst`)
    /// extend to this conclusion over `inst`?
    ///
    /// Equalities among premise-bound terms are checked directly; equalities
    /// that mention a still-free existential variable force a binding for it;
    /// remaining atoms are checked by a (semijoin-style) satisfiability query
    /// over the instance, with join steps resolved by the adaptive planner
    /// ([`CompiledConclusion::satisfied_with`] chooses it explicitly).
    pub fn satisfied(&self, h: &Substitution, inst: &SymbolicInstance) -> bool {
        self.satisfied_with(h, inst, JoinPlanner::default())
    }

    /// [`CompiledConclusion::satisfied`] with an explicit [`JoinPlanner`]
    /// for the satisfiability check. The planner never changes the answer.
    pub fn satisfied_with(
        &self,
        h: &Substitution,
        inst: &SymbolicInstance,
        planner: JoinPlanner,
    ) -> bool {
        let mut init = h.clone();
        for (a, b) in &self.conjunct.equalities {
            let ia = init.apply_term_deep(*a);
            let ib = init.apply_term_deep(*b);
            if ia == ib {
                continue;
            }
            if let Term::Var(v) = ia {
                if a.as_var() == Some(v) && !init.binds(v) {
                    init.set(v, ib);
                    continue;
                }
            }
            if let Term::Var(v) = ib {
                if b.as_var() == Some(v) && !init.binds(v) {
                    init.set(v, ia);
                    continue;
                }
            }
            return false;
        }
        if self.conjunct.atoms.is_empty() {
            return true;
        }
        satisfiable_ordered(&self.conjunct.atoms, &[], inst, init, &self.order, planner)
    }
}

/// A DED compiled for set-oriented chasing.
#[derive(Clone, Debug)]
pub struct CompiledDed {
    /// The source dependency.
    pub ded: Ded,
    /// Compiled conclusions (empty for denial constraints).
    pub conclusions: Vec<CompiledConclusion>,
    /// Unique premise predicates, in first-occurrence order. The semi-naive
    /// chase keeps one delta watermark per entry ([`premise_slots`] maps each
    /// premise atom onto its entry).
    ///
    /// [`premise_slots`]: CompiledDed::premise_slots
    pub premise_preds: Vec<Predicate>,
    /// Per premise atom, the index of its predicate in
    /// [`CompiledDed::premise_preds`].
    pub premise_slots: Vec<usize>,
    /// The premise join order, chosen once at compile time (the order
    /// depends only on the atoms and the — empty — set of initially bound
    /// variables, so recomputing it per evaluation was pure waste). Which
    /// join *strategy* each ordered step uses (scan vs index probe) is
    /// still resolved at evaluation time by the [`JoinPlanner`] from the
    /// instance's statistics.
    pub premise_order: Vec<usize>,
}

impl CompiledDed {
    /// Compile a dependency.
    pub fn compile(ded: &Ded) -> CompiledDed {
        let mut premise_preds: Vec<Predicate> = Vec::new();
        let premise_slots: Vec<usize> = ded
            .premise
            .iter()
            .map(|a| {
                premise_preds.iter().position(|p| *p == a.predicate).unwrap_or_else(|| {
                    premise_preds.push(a.predicate);
                    premise_preds.len() - 1
                })
            })
            .collect();
        CompiledDed {
            conclusions: ded
                .conclusions
                .iter()
                .map(|c| CompiledConclusion::new(c, &ded.premise))
                .collect(),
            premise_order: order_atoms(&ded.premise, &[]),
            ded: ded.clone(),
            premise_preds,
            premise_slots,
        }
    }

    /// Compile a set of dependencies.
    pub fn compile_all(deds: &[Ded]) -> Vec<CompiledDed> {
        deds.iter().map(CompiledDed::compile).collect()
    }

    /// All homomorphisms from the premise into the instance (respecting the
    /// premise inequalities), found in bulk by hash-join evaluation along
    /// the precompiled [`CompiledDed::premise_order`], with each join step
    /// resolved by the default (adaptive) planner.
    pub fn premise_bindings(&self, inst: &SymbolicInstance) -> Vec<Substitution> {
        self.premise_bindings_with(inst, JoinPlanner::default())
    }

    /// [`CompiledDed::premise_bindings`] with an explicit [`JoinPlanner`].
    /// The planner never changes the bindings or their order, only the
    /// scan/probe strategy per join step.
    pub fn premise_bindings_with(
        &self,
        inst: &SymbolicInstance,
        planner: JoinPlanner,
    ) -> Vec<Substitution> {
        evaluate_bindings_ordered(
            &self.ded.premise,
            &self.ded.premise_inequalities,
            inst,
            &Substitution::new(),
            &self.premise_order,
            planner,
        )
    }

    /// Semi-naive premise evaluation: only homomorphisms that use at least
    /// one tuple beyond the per-slot watermarks in `marks` (aligned with
    /// [`CompiledDed::premise_preds`]), in the full join's order — see
    /// [`crate::evaluate::evaluate_bindings_delta`].
    pub fn premise_bindings_delta(
        &self,
        inst: &SymbolicInstance,
        marks: &[usize],
    ) -> Vec<Substitution> {
        self.premise_bindings_delta_with(inst, marks, JoinPlanner::default())
    }

    /// [`CompiledDed::premise_bindings_delta`] with an explicit
    /// [`JoinPlanner`]. The old-prefix join of the delta passes is computed
    /// once and shared (see
    /// [`crate::evaluate::evaluate_bindings_delta_with`]); the planner never
    /// changes the bindings or their order.
    pub fn premise_bindings_delta_with(
        &self,
        inst: &SymbolicInstance,
        marks: &[usize],
        planner: JoinPlanner,
    ) -> Vec<Substitution> {
        let old_len: Vec<usize> = self.premise_slots.iter().map(|&s| marks[s]).collect();
        evaluate_bindings_delta_ordered(
            &self.ded.premise,
            &self.ded.premise_inequalities,
            inst,
            &Substitution::new(),
            &old_len,
            &self.premise_order,
            planner,
        )
    }

    /// Relation lengths of the premise predicates (the watermark snapshot a
    /// fixpoint confirmation records), aligned with
    /// [`CompiledDed::premise_preds`].
    pub fn premise_watermarks(&self, inst: &SymbolicInstance) -> Vec<usize> {
        self.premise_preds.iter().map(|p| inst.relation_len(*p)).collect()
    }

    /// Is the chase step for homomorphism `h` *blocked* (some conclusion
    /// disjunct already holds)?
    pub fn blocked(&self, h: &Substitution, inst: &SymbolicInstance) -> bool {
        self.blocked_with(h, inst, JoinPlanner::default())
    }

    /// [`CompiledDed::blocked`] with an explicit [`JoinPlanner`] for the
    /// conclusion satisfiability checks. The planner never changes the
    /// answer.
    pub fn blocked_with(
        &self,
        h: &Substitution,
        inst: &SymbolicInstance,
        planner: JoinPlanner,
    ) -> bool {
        self.conclusions.iter().any(|c| c.satisfied_with(h, inst, planner))
    }
}

/// Number of dependency-set compilations performed since process start.
///
/// Used by regression tests to verify that long-lived engines compile their
/// dependency set exactly once — no public entry point may recompile per
/// chase, per candidate or per query block.
static COMPILATIONS: AtomicUsize = AtomicUsize::new(0);

/// The process-wide dependency-set compilation count (see [`CompiledDeps`]).
pub fn compilation_count() -> usize {
    COMPILATIONS.load(Ordering::SeqCst)
}

/// Premise-predicate index over a compiled DED list, driving the chase's
/// delta rounds: a dependency whose premise mentions none of the predicates
/// touched since it was last confirmed at fixpoint cannot acquire a new
/// unblocked premise binding (the instance only grows, and blocked steps
/// stay blocked), so the round skips it without evaluating anything.
#[derive(Clone, Debug, Default)]
pub struct DedIndex {
    /// Per predicate, every `(dependency, watermark slot)` whose premise
    /// mentions it (the slot indexes the dependency's
    /// [`CompiledDed::premise_preds`]).
    by_pred: HashMap<Predicate, Vec<(usize, usize)>>,
    n: usize,
}

impl DedIndex {
    fn new(compiled: &[CompiledDed]) -> DedIndex {
        let mut by_pred: HashMap<Predicate, Vec<(usize, usize)>> = HashMap::new();
        for (i, d) in compiled.iter().enumerate() {
            for (slot, p) in d.premise_preds.iter().enumerate() {
                by_pred.entry(*p).or_default().push((i, slot));
            }
        }
        DedIndex { by_pred, n: compiled.len() }
    }

    /// The needs-check vector a chase starts from. `None` means everything
    /// is dirty (a from-scratch chase); `Some(preds)` restricts the initial
    /// work to dependencies whose premise mentions one of `preds` (a chase
    /// resumed from a fixpoint seed extended with atoms of those predicates).
    pub fn initial_needs(&self, dirty: Option<&HashSet<Predicate>>) -> Vec<bool> {
        match dirty {
            None => vec![true; self.n],
            Some(set) => {
                let mut needs = vec![false; self.n];
                for p in set {
                    self.mark(*p, &mut needs);
                }
                needs
            }
        }
    }

    /// Mark every dependency whose premise mentions `p` as needing a
    /// re-check (an atom of that predicate was inserted).
    pub fn mark(&self, p: Predicate, needs: &mut [bool]) {
        if let Some(dis) = self.by_pred.get(&p) {
            for &(i, _) in dis {
                needs[i] = true;
            }
        }
    }

    /// Mark every dependency whose premise mentions `p` after the relation
    /// of `p` was *rewritten* (an EGD unification): besides the re-check
    /// flag, the dependency's delta watermark for `p` is reset to 0 — tuple
    /// positions changed, so the whole relation is delta again.
    pub fn mark_rewrite(&self, p: Predicate, needs: &mut [bool], marks: &mut [Vec<usize>]) {
        if let Some(dis) = self.by_pred.get(&p) {
            for &(i, slot) in dis {
                needs[i] = true;
                marks[i][slot] = 0;
            }
        }
    }
}

/// A dependency set compiled once for repeated chasing.
///
/// Holds the source DEDs plus everything `run_chase` needs precomputed:
/// the detected closure-shortcut constraints, the EGD-priority-sorted
/// compiled DED lists — both with the closure constraints excluded
/// (shortcut on) and included (shortcut off) — and the premise-predicate
/// indexes driving the delta rounds. Build it once per engine / `Mars`
/// instance and share it via `Arc` — every chase and back-chase then reuses
/// the same compilation.
#[derive(Clone, Debug)]
pub struct CompiledDeps {
    deds: Vec<Ded>,
    /// EGD-priority-sorted compiled DEDs excluding the closure-shortcut
    /// constraints (used when `ChaseOptions::use_shortcut` is on).
    shortcut_rest: Vec<CompiledDed>,
    /// EGD-priority-sorted compiled DEDs, all of them (shortcut off).
    all: Vec<CompiledDed>,
    /// Premise-predicate indexes aligned with the two lists above.
    shortcut_index: DedIndex,
    all_index: DedIndex,
    /// The detected `(refl)/(base)/(trans)` closure constraints.
    closure: ClosureConstraints,
}

/// EGD-priority order: denials first (fail fast), then pure
/// equality-generating dependencies, then tuple-generating ones. Since the
/// chase restarts its round whenever an equality is applied, this runs every
/// unification to fixpoint *before* any TGD invents new atoms — otherwise a
/// TGD can fire on two pre-unification duplicates and create spurious
/// existential structure that no later equality removes (the instances stay
/// homomorphically equivalent, but grow multiplicatively with each
/// duplicated pattern).
fn egd_priority(d: &CompiledDed) -> u8 {
    if d.conclusions.is_empty() {
        0
    } else if d.conclusions.iter().all(|c| c.conjunct.atoms.is_empty()) {
        1
    } else {
        2
    }
}

impl CompiledDeps {
    /// Compile a dependency set (closure detection + per-DED compilation +
    /// EGD-priority ordering). This is the only place dependency compilation
    /// happens; it increments the process-wide [`compilation_count`].
    pub fn new(deds: &[Ded]) -> CompiledDeps {
        COMPILATIONS.fetch_add(1, Ordering::SeqCst);
        let closure = detect_closure_constraints(deds);
        let skip: HashSet<usize> = closure.indices().into_iter().collect();
        let mut all: Vec<CompiledDed> = deds.iter().map(CompiledDed::compile).collect();
        let mut shortcut_rest: Vec<CompiledDed> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| !skip.contains(i))
            .map(|(_, d)| d.clone())
            .collect();
        all.sort_by_key(egd_priority);
        shortcut_rest.sort_by_key(egd_priority);
        let shortcut_index = DedIndex::new(&shortcut_rest);
        let all_index = DedIndex::new(&all);
        CompiledDeps { deds: deds.to_vec(), shortcut_rest, all, shortcut_index, all_index, closure }
    }

    /// The source dependency set.
    pub fn deds(&self) -> &[Ded] {
        &self.deds
    }

    /// The compiled DEDs the chase should run, given whether the closure
    /// shortcut is active, plus the closure constraints to apply directly
    /// (`None` when the shortcut is off) and the premise-predicate index
    /// aligned with the returned list.
    pub fn for_chase(
        &self,
        use_shortcut: bool,
    ) -> (&[CompiledDed], Option<&ClosureConstraints>, &DedIndex) {
        if use_shortcut {
            (&self.shortcut_rest, Some(&self.closure), &self.shortcut_index)
        } else {
            (&self.all, None, &self.all_index)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::atom::builders::*;
    use mars_cq::{Atom, ConjunctiveQuery, Ded, Term, Variable};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    fn instance_of(atoms: Vec<Atom>) -> SymbolicInstance {
        let q = ConjunctiveQuery::new("Q").with_body(atoms);
        SymbolicInstance::from_query(&q)
    }

    #[test]
    fn tgd_blocking_detection() {
        // base: child(x,y) → desc(x,y)
        let base =
            Ded::tgd("base", vec![child(t("x"), t("y"))], vec![], vec![desc(t("x"), t("y"))]);
        let c = CompiledDed::compile(&base);
        let inst_without = instance_of(vec![child(t("a"), t("b"))]);
        let inst_with = instance_of(vec![child(t("a"), t("b")), desc(t("a"), t("b"))]);
        let hs = c.premise_bindings(&inst_without);
        assert_eq!(hs.len(), 1);
        assert!(!c.blocked(&hs[0], &inst_without));
        assert!(c.blocked(&hs[0], &inst_with));
    }

    #[test]
    fn egd_blocking_detection() {
        // key: R(k,a) ∧ R(k,b) → a=b
        let key = Ded::egd(
            "key",
            vec![Atom::named("R", vec![t("k"), t("a")]), Atom::named("R", vec![t("k"), t("b")])],
            t("a"),
            t("b"),
        );
        let c = CompiledDed::compile(&key);
        assert!(c.conclusions[0].is_pure_equality);
        let inst = instance_of(vec![
            Atom::named("R", vec![t("u"), t("x")]),
            Atom::named("R", vec![t("u"), t("y")]),
        ]);
        let hs = c.premise_bindings(&inst);
        // Homomorphisms include mappings with a=b (blocked) and a≠b (unblocked).
        assert!(hs.iter().any(|h| c.blocked(h, &inst)));
        assert!(hs.iter().any(|h| !c.blocked(h, &inst)));
    }

    #[test]
    fn existential_conclusions_use_semijoin() {
        // ind: A(x,y) → ∃z B(y,z)
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![Variable::named("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let c = CompiledDed::compile(&ind);
        let inst_no_b = instance_of(vec![Atom::named("A", vec![t("a"), t("b")])]);
        let inst_b = instance_of(vec![
            Atom::named("A", vec![t("a"), t("b")]),
            Atom::named("B", vec![t("b"), t("c")]),
        ]);
        let h = &c.premise_bindings(&inst_no_b)[0];
        assert!(!c.blocked(h, &inst_no_b));
        assert!(c.blocked(h, &inst_b));
    }

    #[test]
    fn premise_inequalities_respected_in_bindings() {
        let d = Ded::tgd(
            "neq",
            vec![Atom::named("R", vec![t("x"), t("y")])],
            vec![],
            vec![Atom::named("S", vec![t("x")])],
        )
        .with_premise_inequalities(vec![(t("x"), t("y"))]);
        let c = CompiledDed::compile(&d);
        let inst = instance_of(vec![
            Atom::named("R", vec![t("a"), t("a")]),
            Atom::named("R", vec![t("a"), t("b")]),
        ]);
        assert_eq!(c.premise_bindings(&inst).len(), 1);
    }

    #[test]
    fn denial_has_no_conclusions() {
        let d = Ded::denial("no_self", vec![child(t("x"), t("x"))]);
        let c = CompiledDed::compile(&d);
        assert!(c.conclusions.is_empty());
        let inst = instance_of(vec![child(t("a"), t("a"))]);
        let hs = c.premise_bindings(&inst);
        assert_eq!(hs.len(), 1);
        assert!(!c.blocked(&hs[0], &inst));
    }
}
