//! Compiled constraints.
//!
//! Constraints are compiled once, when read into the system (Section 3.1):
//! the premise becomes a join plan evaluated over the symbolic instance and
//! each conclusion disjunct becomes the probe side of a semijoin used for the
//! extension check.

use crate::evaluate::{evaluate_bindings, satisfiable};
use crate::instance::SymbolicInstance;
use mars_cq::{Conjunct, Ded, Substitution, Term};

/// A compiled conclusion disjunct.
#[derive(Clone, Debug)]
pub struct CompiledConclusion {
    /// The original conjunct.
    pub conjunct: Conjunct,
    /// True if the conjunct has no atoms (pure equality / EGD component).
    pub is_pure_equality: bool,
}

impl CompiledConclusion {
    fn new(conjunct: &Conjunct) -> CompiledConclusion {
        CompiledConclusion {
            is_pure_equality: conjunct.atoms.is_empty(),
            conjunct: conjunct.clone(),
        }
    }

    /// Does the homomorphism `h` (from the owning DED's premise into `inst`)
    /// extend to this conclusion over `inst`?
    ///
    /// Equalities among premise-bound terms are checked directly; equalities
    /// that mention a still-free existential variable force a binding for it;
    /// remaining atoms are checked by a (semijoin-style) satisfiability query
    /// over the instance.
    pub fn satisfied(&self, h: &Substitution, inst: &SymbolicInstance) -> bool {
        let mut init = h.clone();
        for (a, b) in &self.conjunct.equalities {
            let ia = init.apply_term_deep(*a);
            let ib = init.apply_term_deep(*b);
            if ia == ib {
                continue;
            }
            if let Term::Var(v) = ia {
                if a.as_var() == Some(v) && !init.binds(v) {
                    init.set(v, ib);
                    continue;
                }
            }
            if let Term::Var(v) = ib {
                if b.as_var() == Some(v) && !init.binds(v) {
                    init.set(v, ia);
                    continue;
                }
            }
            return false;
        }
        if self.conjunct.atoms.is_empty() {
            return true;
        }
        satisfiable(&self.conjunct.atoms, &[], inst, &init)
    }
}

/// A DED compiled for set-oriented chasing.
#[derive(Clone, Debug)]
pub struct CompiledDed {
    /// The source dependency.
    pub ded: Ded,
    /// Compiled conclusions (empty for denial constraints).
    pub conclusions: Vec<CompiledConclusion>,
}

impl CompiledDed {
    /// Compile a dependency.
    pub fn compile(ded: &Ded) -> CompiledDed {
        CompiledDed {
            conclusions: ded.conclusions.iter().map(CompiledConclusion::new).collect(),
            ded: ded.clone(),
        }
    }

    /// Compile a set of dependencies.
    pub fn compile_all(deds: &[Ded]) -> Vec<CompiledDed> {
        deds.iter().map(CompiledDed::compile).collect()
    }

    /// All homomorphisms from the premise into the instance (respecting the
    /// premise inequalities), found in bulk by hash-join evaluation.
    pub fn premise_bindings(&self, inst: &SymbolicInstance) -> Vec<Substitution> {
        evaluate_bindings(
            &self.ded.premise,
            &self.ded.premise_inequalities,
            inst,
            &Substitution::new(),
        )
    }

    /// Is the chase step for homomorphism `h` *blocked* (some conclusion
    /// disjunct already holds)?
    pub fn blocked(&self, h: &Substitution, inst: &SymbolicInstance) -> bool {
        self.conclusions.iter().any(|c| c.satisfied(h, inst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_cq::atom::builders::*;
    use mars_cq::{Atom, ConjunctiveQuery, Ded, Term, Variable};

    fn t(n: &str) -> Term {
        Term::var(n)
    }

    fn instance_of(atoms: Vec<Atom>) -> SymbolicInstance {
        let q = ConjunctiveQuery::new("Q").with_body(atoms);
        SymbolicInstance::from_query(&q)
    }

    #[test]
    fn tgd_blocking_detection() {
        // base: child(x,y) → desc(x,y)
        let base =
            Ded::tgd("base", vec![child(t("x"), t("y"))], vec![], vec![desc(t("x"), t("y"))]);
        let c = CompiledDed::compile(&base);
        let inst_without = instance_of(vec![child(t("a"), t("b"))]);
        let inst_with = instance_of(vec![child(t("a"), t("b")), desc(t("a"), t("b"))]);
        let hs = c.premise_bindings(&inst_without);
        assert_eq!(hs.len(), 1);
        assert!(!c.blocked(&hs[0], &inst_without));
        assert!(c.blocked(&hs[0], &inst_with));
    }

    #[test]
    fn egd_blocking_detection() {
        // key: R(k,a) ∧ R(k,b) → a=b
        let key = Ded::egd(
            "key",
            vec![Atom::named("R", vec![t("k"), t("a")]), Atom::named("R", vec![t("k"), t("b")])],
            t("a"),
            t("b"),
        );
        let c = CompiledDed::compile(&key);
        assert!(c.conclusions[0].is_pure_equality);
        let inst = instance_of(vec![
            Atom::named("R", vec![t("u"), t("x")]),
            Atom::named("R", vec![t("u"), t("y")]),
        ]);
        let hs = c.premise_bindings(&inst);
        // Homomorphisms include mappings with a=b (blocked) and a≠b (unblocked).
        assert!(hs.iter().any(|h| c.blocked(h, &inst)));
        assert!(hs.iter().any(|h| !c.blocked(h, &inst)));
    }

    #[test]
    fn existential_conclusions_use_semijoin() {
        // ind: A(x,y) → ∃z B(y,z)
        let ind = Ded::tgd(
            "ind",
            vec![Atom::named("A", vec![t("x"), t("y")])],
            vec![Variable::named("z")],
            vec![Atom::named("B", vec![t("y"), t("z")])],
        );
        let c = CompiledDed::compile(&ind);
        let inst_no_b = instance_of(vec![Atom::named("A", vec![t("a"), t("b")])]);
        let inst_b = instance_of(vec![
            Atom::named("A", vec![t("a"), t("b")]),
            Atom::named("B", vec![t("b"), t("c")]),
        ]);
        let h = &c.premise_bindings(&inst_no_b)[0];
        assert!(!c.blocked(h, &inst_no_b));
        assert!(c.blocked(h, &inst_b));
    }

    #[test]
    fn premise_inequalities_respected_in_bindings() {
        let d = Ded::tgd(
            "neq",
            vec![Atom::named("R", vec![t("x"), t("y")])],
            vec![],
            vec![Atom::named("S", vec![t("x")])],
        )
        .with_premise_inequalities(vec![(t("x"), t("y"))]);
        let c = CompiledDed::compile(&d);
        let inst = instance_of(vec![
            Atom::named("R", vec![t("a"), t("a")]),
            Atom::named("R", vec![t("a"), t("b")]),
        ]);
        assert_eq!(c.premise_bindings(&inst).len(), 1);
    }

    #[test]
    fn denial_has_no_conclusions() {
        let d = Ded::denial("no_self", vec![child(t("x"), t("x"))]);
        let c = CompiledDed::compile(&d);
        assert!(c.conclusions.is_empty());
        let inst = instance_of(vec![child(t("a"), t("a"))]);
        let hs = c.premise_bindings(&inst);
        assert_eq!(hs.len(), 1);
        assert!(!c.blocked(&hs[0], &inst));
    }
}
