//! # mars-xml — the XML substrate
//!
//! MARS is middleware: it reformulates queries over virtual XML documents and
//! ships them to storage engines. Nevertheless a concrete XML data model is
//! needed throughout the reproduction — to materialize views, to execute
//! reformulated and unreformulated queries (the "Galax substitute" of the
//! experiments), to encode documents into the GReX relations for tests, and to
//! drive schema-specialization inference.
//!
//! The crate provides:
//!
//! * an arena-based [`Document`] model with cheap [`NodeId`] handles,
//! * a hand-written XML [`parser`](parse::parse_document) and serializer
//!   (no external dependencies),
//! * an XPath fragment ([`xpath`]) covering the navigation used by the paper:
//!   child (`/`) and descendant (`//`) steps, name tests, wildcards,
//!   `text()` and attribute access,
//! * [`XmlShape`] descriptions (a DTD-like structural summary) used by the
//!   hybrid-inlining specialization inference in `mars-specialize`.

pub mod doc;
pub mod parse;
pub mod shape;
pub mod xpath;

pub use doc::{Document, Node, NodeId, NodeKind};
pub use parse::{parse_document, ParseError};
pub use shape::{Multiplicity, ShapeElement, XmlShape};
pub use xpath::{eval_path, parse_path, Path, PathError, PathValue, Step};
