//! Arena-based XML document model.
//!
//! Nodes live in a flat arena owned by the [`Document`]; tree edges are stored
//! as index vectors. This keeps node handles (`NodeId`) `Copy`, makes
//! descendant traversal cheap, and maps directly onto the GReX relational
//! encoding (`el`, `child`, `desc`, `tag`, `attr`, `id`, `text`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Handle to a node in a [`Document`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Kind of a node.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An element node with a tag name.
    Element { tag: String },
    /// A text node.
    Text { value: String },
}

/// A node in the arena.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The node's kind (element or text).
    pub kind: NodeKind,
    /// Parent node (`None` for the document root element).
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
    /// Attributes (name → value), in insertion order.
    pub attributes: Vec<(String, String)>,
}

impl Node {
    fn element(tag: &str, parent: Option<NodeId>) -> Node {
        Node {
            kind: NodeKind::Element { tag: tag.to_string() },
            parent,
            children: Vec::new(),
            attributes: Vec::new(),
        }
    }

    fn text(value: &str, parent: Option<NodeId>) -> Node {
        Node {
            kind: NodeKind::Text { value: value.to_string() },
            parent,
            children: Vec::new(),
            attributes: Vec::new(),
        }
    }

    /// The tag name, if this is an element.
    pub fn tag(&self) -> Option<&str> {
        match &self.kind {
            NodeKind::Element { tag } => Some(tag),
            NodeKind::Text { .. } => None,
        }
    }

    /// The text value, if this is a text node.
    pub fn text_value(&self) -> Option<&str> {
        match &self.kind {
            NodeKind::Text { value } => Some(value),
            NodeKind::Element { .. } => None,
        }
    }

    /// Is this an element node?
    pub fn is_element(&self) -> bool {
        matches!(self.kind, NodeKind::Element { .. })
    }
}

/// An XML document: an arena of nodes with a distinguished root element.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Logical name of the document, e.g. `catalog.xml`.
    pub name: String,
    nodes: Vec<Node>,
    root: Option<NodeId>,
}

impl Document {
    /// An empty document with the given name.
    pub fn new(name: &str) -> Document {
        Document { name: name.to_string(), nodes: Vec::new(), root: None }
    }

    /// Create the root element; panics if a root already exists.
    pub fn create_root(&mut self, tag: &str) -> NodeId {
        assert!(self.root.is_none(), "document already has a root");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::element(tag, None));
        self.root = Some(id);
        id
    }

    /// The root element.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Append a child element under `parent`.
    pub fn add_element(&mut self, parent: NodeId, tag: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::element(tag, Some(parent)));
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Append a text child under `parent`.
    pub fn add_text(&mut self, parent: NodeId, value: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::text(value, Some(parent)));
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Append an element with a single text child (`<tag>value</tag>`),
    /// returning the element's id. This is the most common shape in the
    /// paper's examples (leaf fields like `<price>12</price>`).
    pub fn add_leaf(&mut self, parent: NodeId, tag: &str, value: &str) -> NodeId {
        let el = self.add_element(parent, tag);
        self.add_text(el, value);
        el
    }

    /// Set an attribute on an element.
    pub fn set_attribute(&mut self, node: NodeId, name: &str, value: &str) {
        let attrs = &mut self.nodes[node.index()].attributes;
        if let Some(entry) = attrs.iter_mut().find(|(n, _)| n == name) {
            entry.1 = value.to_string();
        } else {
            attrs.push((name.to_string(), value.to_string()));
        }
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes (elements + text nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the document empty (no root)?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of element nodes.
    pub fn element_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_element()).count()
    }

    /// All node ids in document order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Child elements of a node.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.node(id).children.iter().copied().filter(|c| self.node(*c).is_element())
    }

    /// Child elements with the given tag.
    pub fn children_with_tag<'a>(
        &'a self,
        id: NodeId,
        tag: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.child_elements(id).filter(move |c| self.node(*c).tag() == Some(tag))
    }

    /// All descendant elements of a node (excluding the node itself), in
    /// document order.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.node(id).children.iter().rev().copied().collect();
        while let Some(next) = stack.pop() {
            if self.node(next).is_element() {
                out.push(next);
            }
            stack.extend(self.node(next).children.iter().rev().copied());
        }
        out
    }

    /// Descendant-or-self element set.
    pub fn descendants_or_self(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = vec![id];
        out.extend(self.descendants(id));
        out
    }

    /// Concatenated text content of the node's direct text children.
    pub fn text_of(&self, id: NodeId) -> String {
        self.node(id)
            .children
            .iter()
            .filter_map(|c| self.node(*c).text_value())
            .collect::<Vec<_>>()
            .join("")
    }

    /// Attribute value lookup.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.node(id).attributes.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Deep-copy the subtree rooted at `source` (from `other`) under
    /// `parent` in this document. Returns the id of the copy. Used when
    /// materializing XQuery views that return deep copies of input elements.
    pub fn deep_copy_from(&mut self, other: &Document, source: NodeId, parent: NodeId) -> NodeId {
        let src = other.node(source);
        let new_id = match &src.kind {
            NodeKind::Element { tag } => {
                let id = self.add_element(parent, tag);
                for (n, v) in &src.attributes {
                    self.set_attribute(id, n, v);
                }
                id
            }
            NodeKind::Text { value } => self.add_text(parent, value),
        };
        for child in &src.children {
            self.deep_copy_from(other, *child, new_id);
        }
        new_id
    }

    /// Serialize to XML text (no declaration, two-space indentation).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        if let Some(root) = self.root {
            self.write_node(root, 0, &mut out);
        }
        out
    }

    fn write_node(&self, id: NodeId, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let node = self.node(id);
        match &node.kind {
            NodeKind::Text { value } => {
                out.push_str(&indent);
                out.push_str(&escape(value));
                out.push('\n');
            }
            NodeKind::Element { tag } => {
                out.push_str(&indent);
                out.push('<');
                out.push_str(tag);
                for (n, v) in &node.attributes {
                    out.push_str(&format!(" {n}=\"{}\"", escape(v)));
                }
                if node.children.is_empty() {
                    out.push_str("/>\n");
                    return;
                }
                // Compact form for leaf elements with a single text child.
                if node.children.len() == 1 {
                    if let Some(text) = self.node(node.children[0]).text_value() {
                        out.push('>');
                        out.push_str(&escape(text));
                        out.push_str(&format!("</{tag}>\n"));
                        return;
                    }
                }
                out.push_str(">\n");
                for c in &node.children {
                    self.write_node(*c, depth + 1, out);
                }
                out.push_str(&indent);
                out.push_str(&format!("</{tag}>\n"));
            }
        }
    }
}

/// Escape XML special characters.
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// Unescape XML entities produced by [`escape`].
pub fn unescape(s: &str) -> String {
    s.replace("&lt;", "<").replace("&gt;", ">").replace("&quot;", "\"").replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Document {
        // <catalog><drug><name>aspirin</name><price>3</price></drug>
        //          <drug><name>ibuprofen</name><price>5</price></drug></catalog>
        let mut d = Document::new("catalog.xml");
        let root = d.create_root("catalog");
        for (name, price) in [("aspirin", "3"), ("ibuprofen", "5")] {
            let drug = d.add_element(root, "drug");
            d.add_leaf(drug, "name", name);
            d.add_leaf(drug, "price", price);
        }
        d
    }

    #[test]
    fn building_and_counting() {
        let d = catalog();
        assert_eq!(d.element_count(), 7);
        assert_eq!(d.len(), 11); // 7 elements + 4 text nodes
        assert!(!d.is_empty());
        let root = d.root().unwrap();
        assert_eq!(d.node(root).tag(), Some("catalog"));
        assert_eq!(d.child_elements(root).count(), 2);
    }

    #[test]
    fn text_and_attributes() {
        let mut d = catalog();
        let root = d.root().unwrap();
        let first_drug = d.child_elements(root).next().unwrap();
        let name = d.children_with_tag(first_drug, "name").next().unwrap();
        assert_eq!(d.text_of(name), "aspirin");
        d.set_attribute(first_drug, "id", "d1");
        assert_eq!(d.attribute(first_drug, "id"), Some("d1"));
        d.set_attribute(first_drug, "id", "d2");
        assert_eq!(d.attribute(first_drug, "id"), Some("d2"));
        assert_eq!(d.attribute(first_drug, "absent"), None);
    }

    #[test]
    fn descendants_are_in_document_order() {
        let d = catalog();
        let root = d.root().unwrap();
        let desc = d.descendants(root);
        assert_eq!(desc.len(), 6);
        let tags: Vec<&str> = desc.iter().filter_map(|n| d.node(*n).tag()).collect();
        assert_eq!(tags, vec!["drug", "name", "price", "drug", "name", "price"]);
        assert_eq!(d.descendants_or_self(root).len(), 7);
    }

    #[test]
    fn parents_are_tracked() {
        let d = catalog();
        let root = d.root().unwrap();
        for c in d.child_elements(root) {
            assert_eq!(d.node(c).parent, Some(root));
        }
        assert_eq!(d.node(root).parent, None);
    }

    #[test]
    fn serialization_round_trips_structure() {
        let d = catalog();
        let xml = d.to_xml();
        assert!(xml.contains("<catalog>"));
        assert!(xml.contains("<name>aspirin</name>"));
        assert!(xml.contains("</catalog>"));
    }

    #[test]
    fn deep_copy_between_documents() {
        let src = catalog();
        let mut dst = Document::new("copy.xml");
        let root = dst.create_root("result");
        let first_drug = src.child_elements(src.root().unwrap()).next().unwrap();
        dst.deep_copy_from(&src, first_drug, root);
        assert_eq!(dst.element_count(), 4); // result + drug + name + price
        let drug = dst.child_elements(root).next().unwrap();
        assert_eq!(dst.node(drug).tag(), Some("drug"));
        let name = dst.children_with_tag(drug, "name").next().unwrap();
        assert_eq!(dst.text_of(name), "aspirin");
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b&c>\"d\""), "a&lt;b&amp;c&gt;&quot;d&quot;");
        assert_eq!(unescape(&escape("a<b&c>\"d\"")), "a<b&c>\"d\"");
    }

    #[test]
    #[should_panic(expected = "already has a root")]
    fn double_root_panics() {
        let mut d = Document::new("x");
        d.create_root("a");
        d.create_root("b");
    }
}
