//! The XPath fragment used by MARS.
//!
//! XBind queries and XICs use predicates `[p](x, y)` defined by XPath
//! expressions (Section 2.1). The fragment needed by the paper consists of
//! child steps (`/name`), descendant steps (`//name`), wildcards (`*`),
//! `text()` and attribute steps (`@name`), either *absolute* (starting at the
//! document root) or *relative* (starting at a context node, written with a
//! leading `.`).

use crate::doc::{Document, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single navigation step.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Step {
    /// `/name` — child element with the given tag.
    Child(String),
    /// `//name` — descendant element with the given tag.
    Descendant(String),
    /// `/*` — any child element.
    ChildAny,
    /// `//*` — any descendant element.
    DescendantAny,
    /// `/text()` — the concatenated text of the context node.
    Text,
    /// `/@name` — the value of the given attribute.
    Attribute(String),
}

/// A parsed XPath expression.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    /// True if the path starts at the document root (e.g. `//book`,
    /// `/catalog/drug`), false if it is relative to a context node
    /// (e.g. `./title`, `.//price`).
    pub absolute: bool,
    /// The steps, in order.
    pub steps: Vec<Step>,
}

impl Path {
    /// A relative path with the given steps.
    pub fn relative(steps: Vec<Step>) -> Path {
        Path { absolute: false, steps }
    }

    /// An absolute path with the given steps.
    pub fn absolute(steps: Vec<Step>) -> Path {
        Path { absolute: true, steps }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Is the path empty (`.`)?
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Does the path end in a value step (`text()` or attribute)?
    pub fn returns_value(&self) -> bool {
        matches!(self.steps.last(), Some(Step::Text) | Some(Step::Attribute(_)))
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.absolute {
            write!(f, ".")?;
        }
        for s in &self.steps {
            match s {
                Step::Child(n) => write!(f, "/{n}")?,
                Step::Descendant(n) => write!(f, "//{n}")?,
                Step::ChildAny => write!(f, "/*")?,
                Step::DescendantAny => write!(f, "//*")?,
                Step::Text => write!(f, "/text()")?,
                Step::Attribute(n) => write!(f, "/@{n}")?,
            }
        }
        Ok(())
    }
}

/// XPath parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathError {
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error: {}", self.message)
    }
}

impl std::error::Error for PathError {}

/// Parse an XPath expression from the fragment described above.
pub fn parse_path(input: &str) -> Result<Path, PathError> {
    let mut s = input.trim();
    if s.is_empty() {
        return Err(PathError { message: "empty path".to_string() });
    }
    let absolute;
    if let Some(rest) = s.strip_prefix('.') {
        absolute = false;
        s = rest;
    } else if s.starts_with('/') {
        absolute = true;
    } else {
        // A bare name like `book` is treated as a relative child step.
        absolute = false;
        return Ok(Path { absolute, steps: parse_steps(&format!("/{s}"))? });
    }
    if s.is_empty() {
        return Ok(Path { absolute, steps: Vec::new() });
    }
    Ok(Path { absolute, steps: parse_steps(s)? })
}

fn parse_steps(mut s: &str) -> Result<Vec<Step>, PathError> {
    let mut steps = Vec::new();
    while !s.is_empty() {
        let descendant = if let Some(rest) = s.strip_prefix("//") {
            s = rest;
            true
        } else if let Some(rest) = s.strip_prefix('/') {
            s = rest;
            false
        } else {
            return Err(PathError { message: format!("expected '/' near '{s}'") });
        };
        let end = s.find('/').unwrap_or(s.len());
        let token = &s[..end];
        s = &s[end..];
        if token.is_empty() {
            return Err(PathError { message: "empty step".to_string() });
        }
        let step = if token == "text()" {
            if descendant {
                return Err(PathError { message: "`//text()` is not supported".to_string() });
            }
            Step::Text
        } else if let Some(attr) = token.strip_prefix('@') {
            if descendant {
                return Err(PathError { message: "`//@attr` is not supported".to_string() });
            }
            Step::Attribute(attr.to_string())
        } else if token == "*" {
            if descendant {
                Step::DescendantAny
            } else {
                Step::ChildAny
            }
        } else if token.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.') {
            if descendant {
                Step::Descendant(token.to_string())
            } else {
                Step::Child(token.to_string())
            }
        } else {
            return Err(PathError { message: format!("unsupported step '{token}'") });
        };
        steps.push(step);
    }
    Ok(steps)
}

/// A value produced by evaluating a path: either an element node or a string
/// (text content / attribute value).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PathValue {
    /// An element node.
    Node(NodeId),
    /// A string value.
    Text(String),
}

impl PathValue {
    /// The node inside, if any.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            PathValue::Node(n) => Some(*n),
            PathValue::Text(_) => None,
        }
    }

    /// The string inside, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            PathValue::Text(s) => Some(s),
            PathValue::Node(_) => None,
        }
    }
}

/// Evaluate a path over a document. For absolute paths the context is the
/// root element; relative paths require `context` to be provided.
pub fn eval_path(doc: &Document, path: &Path, context: Option<NodeId>) -> Vec<PathValue> {
    let start: Vec<NodeId> = if path.absolute {
        doc.root().into_iter().collect()
    } else {
        context.into_iter().collect()
    };
    let mut current: Vec<PathValue> = start.into_iter().map(PathValue::Node).collect();
    for (si, step) in path.steps.iter().enumerate() {
        let mut next = Vec::new();
        for v in &current {
            let node = match v {
                PathValue::Node(n) => *n,
                // Value steps must be last; anything after them yields nothing.
                PathValue::Text(_) => continue,
            };
            match step {
                Step::Child(name) => {
                    // The first step of an absolute path also matches the root
                    // element itself (`/catalog/...` addresses the root tag).
                    if path.absolute && si == 0 && doc.node(node).tag() == Some(name.as_str()) {
                        next.push(PathValue::Node(node));
                    }
                    next.extend(doc.children_with_tag(node, name).map(PathValue::Node));
                }
                Step::ChildAny => {
                    next.extend(doc.child_elements(node).map(PathValue::Node));
                }
                Step::Descendant(name) => {
                    let pool = if path.absolute && si == 0 {
                        doc.descendants_or_self(node)
                    } else {
                        doc.descendants(node)
                    };
                    next.extend(
                        pool.into_iter()
                            .filter(|n| doc.node(*n).tag() == Some(name.as_str()))
                            .map(PathValue::Node),
                    );
                }
                Step::DescendantAny => {
                    let pool = if path.absolute && si == 0 {
                        doc.descendants_or_self(node)
                    } else {
                        doc.descendants(node)
                    };
                    next.extend(pool.into_iter().map(PathValue::Node));
                }
                Step::Text => {
                    next.push(PathValue::Text(doc.text_of(node)));
                }
                Step::Attribute(name) => {
                    if let Some(v) = doc.attribute(node, name) {
                        next.push(PathValue::Text(v.to_string()));
                    }
                }
            }
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    fn books() -> Document {
        parse_document(
            "books.xml",
            r#"<bib>
                 <book year="1994"><title>TCP/IP</title><author>Stevens</author></book>
                 <book year="2000">
                   <title>Data on the Web</title>
                   <author>Abiteboul</author><author>Buneman</author><author>Suciu</author>
                 </book>
               </bib>"#,
        )
        .unwrap()
    }

    #[test]
    fn parse_various_paths() {
        assert_eq!(
            parse_path("//author/text()").unwrap(),
            Path::absolute(vec![Step::Descendant("author".into()), Step::Text])
        );
        assert_eq!(
            parse_path("./title").unwrap(),
            Path::relative(vec![Step::Child("title".into())])
        );
        assert_eq!(
            parse_path(".//price").unwrap(),
            Path::relative(vec![Step::Descendant("price".into())])
        );
        assert_eq!(
            parse_path("/bib/book/@year").unwrap(),
            Path::absolute(vec![
                Step::Child("bib".into()),
                Step::Child("book".into()),
                Step::Attribute("year".into())
            ])
        );
        assert_eq!(parse_path("book").unwrap(), Path::relative(vec![Step::Child("book".into())]));
        assert_eq!(parse_path(".").unwrap(), Path::relative(vec![]));
        assert_eq!(parse_path("//*").unwrap(), Path::absolute(vec![Step::DescendantAny]));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_path("").is_err());
        assert!(parse_path("//text()").is_err());
        assert!(parse_path("/a//@x").is_err());
        assert!(parse_path("/a/b[1]").is_err());
        assert!(parse_path("a//").is_err());
    }

    #[test]
    fn display_round_trip() {
        for p in ["//author/text()", "./title", ".//price", "/bib/book/@year", "//*"] {
            let parsed = parse_path(p).unwrap();
            assert_eq!(parse_path(&parsed.to_string()).unwrap(), parsed);
        }
    }

    #[test]
    fn eval_descendant_and_text() {
        let doc = books();
        let authors = eval_path(&doc, &parse_path("//author/text()").unwrap(), None);
        let names: Vec<&str> = authors.iter().filter_map(|v| v.as_text()).collect();
        assert_eq!(names, vec!["Stevens", "Abiteboul", "Buneman", "Suciu"]);
    }

    #[test]
    fn eval_relative_from_context() {
        let doc = books();
        let book_nodes = eval_path(&doc, &parse_path("//book").unwrap(), None);
        assert_eq!(book_nodes.len(), 2);
        let second = book_nodes[1].as_node().unwrap();
        let titles = eval_path(&doc, &parse_path("./title/text()").unwrap(), Some(second));
        assert_eq!(titles[0].as_text(), Some("Data on the Web"));
        let authors = eval_path(&doc, &parse_path("./author").unwrap(), Some(second));
        assert_eq!(authors.len(), 3);
    }

    #[test]
    fn eval_attributes_and_root_addressing() {
        let doc = books();
        let years = eval_path(&doc, &parse_path("/bib/book/@year").unwrap(), None);
        let ys: Vec<&str> = years.iter().filter_map(|v| v.as_text()).collect();
        assert_eq!(ys, vec!["1994", "2000"]);
        // Absolute root addressing: /bib matches the root element.
        let bib = eval_path(&doc, &parse_path("/bib").unwrap(), None);
        assert_eq!(bib.len(), 1);
    }

    #[test]
    fn eval_wildcards() {
        let doc = books();
        let all = eval_path(&doc, &parse_path("//*").unwrap(), None);
        assert_eq!(all.len(), doc.element_count()); // descendant-or-self of root
        let book_children = eval_path(&doc, &parse_path("/bib/book/*").unwrap(), None);
        assert_eq!(book_children.len(), 6);
    }

    #[test]
    fn relative_path_without_context_is_empty() {
        let doc = books();
        assert!(eval_path(&doc, &parse_path("./title").unwrap(), None).is_empty());
    }

    #[test]
    fn value_steps_are_terminal() {
        let doc = books();
        // A (nonsensical) path continuing after text() yields nothing rather
        // than panicking.
        let p = Path::absolute(vec![
            Step::Descendant("author".into()),
            Step::Text,
            Step::Child("x".into()),
        ]);
        assert!(eval_path(&doc, &p, None).is_empty());
    }
}
