//! A small hand-written XML parser.
//!
//! Supports the subset of XML needed by the reproduction: elements,
//! attributes, text content, comments and an optional XML declaration.
//! No namespaces, CDATA, processing instructions or DTD internal subsets —
//! none of the paper's documents need them.

use crate::doc::{unescape, Document, NodeId};
use std::fmt;

/// Parse error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error occurred.
    pub offset: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser { input: input.as_bytes(), pos: 0 }
    }

    fn error<T>(&self, message: &str) -> Result<T, ParseError> {
        Err(ParseError { offset: self.pos, message: message.to_string() })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
                    Some(rel) => self.pos += rel + 2,
                    None => return self.error("unterminated processing instruction"),
                }
            } else if self.starts_with("<!--") {
                match self.input[self.pos..].windows(3).position(|w| w == b"-->") {
                    Some(rel) => self.pos += rel + 3,
                    None => return self.error("unterminated comment"),
                }
            } else if self.starts_with("<!DOCTYPE") {
                match self.input[self.pos..].iter().position(|&b| b == b'>') {
                    Some(rel) => self.pos += rel + 1,
                    None => return self.error("unterminated DOCTYPE"),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn read_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' || c == b':' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.error("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn read_attribute(&mut self) -> Result<(String, String), ParseError> {
        let name = self.read_name()?;
        self.skip_ws();
        if self.peek() != Some(b'=') {
            return self.error("expected '=' in attribute");
        }
        self.pos += 1;
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.error("expected quoted attribute value"),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                break;
            }
            self.pos += 1;
        }
        if self.peek() != Some(quote) {
            return self.error("unterminated attribute value");
        }
        let value = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
        self.pos += 1;
        Ok((name, unescape(&value)))
    }

    /// Parse one element (after `<` has been seen at `self.pos`), adding it to
    /// the document under `parent` (or as root).
    fn parse_element(
        &mut self,
        doc: &mut Document,
        parent: Option<NodeId>,
    ) -> Result<NodeId, ParseError> {
        if self.peek() != Some(b'<') {
            return self.error("expected '<'");
        }
        self.pos += 1;
        let tag = self.read_name()?;
        let node = match parent {
            Some(p) => doc.add_element(p, &tag),
            None => doc.create_root(&tag),
        };
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return self.error("expected '>' after '/'");
                    }
                    self.pos += 1;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let (name, value) = self.read_attribute()?;
                    doc.set_attribute(node, &name, &value);
                }
                None => return self.error("unexpected end of input in tag"),
            }
        }
        // Content.
        loop {
            if self.starts_with("<!--") {
                match self.input[self.pos..].windows(3).position(|w| w == b"-->") {
                    Some(rel) => self.pos += rel + 3,
                    None => return self.error("unterminated comment"),
                }
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.read_name()?;
                if close != tag {
                    return self.error(&format!("mismatched closing tag: <{tag}> vs </{close}>"));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return self.error("expected '>' in closing tag");
                }
                self.pos += 1;
                return Ok(node);
            }
            match self.peek() {
                Some(b'<') => {
                    self.parse_element(doc, Some(node))?;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    let text = unescape(raw.trim());
                    if !text.is_empty() {
                        doc.add_text(node, &text);
                    }
                }
                None => return self.error("unexpected end of input in element content"),
            }
        }
    }
}

/// Parse an XML string into a [`Document`] with the given logical name.
pub fn parse_document(name: &str, input: &str) -> Result<Document, ParseError> {
    let mut parser = Parser::new(input);
    let mut doc = Document::new(name);
    parser.skip_prolog()?;
    parser.skip_ws();
    if parser.peek().is_none() {
        return parser.error("empty document");
    }
    parser.parse_element(&mut doc, None)?;
    parser.skip_ws();
    // Trailing comments are allowed.
    let _ = parser.skip_prolog();
    parser.skip_ws();
    if parser.peek().is_some() {
        return parser.error("trailing content after root element");
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_document() {
        let xml = r#"<?xml version="1.0"?>
            <catalog>
              <drug id="d1"><name>aspirin</name><price>3</price></drug>
              <drug id="d2"><name>ibuprofen</name><price>5</price></drug>
            </catalog>"#;
        let doc = parse_document("catalog.xml", xml).unwrap();
        assert_eq!(doc.element_count(), 7);
        let root = doc.root().unwrap();
        assert_eq!(doc.node(root).tag(), Some("catalog"));
        let drugs: Vec<_> = doc.children_with_tag(root, "drug").collect();
        assert_eq!(drugs.len(), 2);
        assert_eq!(doc.attribute(drugs[0], "id"), Some("d1"));
        let name = doc.children_with_tag(drugs[1], "name").next().unwrap();
        assert_eq!(doc.text_of(name), "ibuprofen");
    }

    #[test]
    fn parse_self_closing_and_comments() {
        let xml = "<a><!-- note --><b/><c x='1'/></a><!-- trailing -->";
        let doc = parse_document("t", xml).unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.child_elements(root).count(), 2);
        let c = doc.children_with_tag(root, "c").next().unwrap();
        assert_eq!(doc.attribute(c, "x"), Some("1"));
    }

    #[test]
    fn entities_are_unescaped() {
        let xml = "<note text=\"a&amp;b\">x &lt; y</note>";
        let doc = parse_document("t", xml).unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.attribute(root, "text"), Some("a&b"));
        assert_eq!(doc.text_of(root), "x < y");
    }

    #[test]
    fn round_trip_parse_serialize_parse() {
        let xml = "<library><book year=\"1998\"><title>FoD</title><author>Abiteboul</author></book></library>";
        let doc = parse_document("lib", xml).unwrap();
        let out = doc.to_xml();
        let doc2 = parse_document("lib", &out).unwrap();
        assert_eq!(doc.element_count(), doc2.element_count());
        let r1 = doc.root().unwrap();
        let r2 = doc2.root().unwrap();
        assert_eq!(doc.node(r1).tag(), doc2.node(r2).tag());
    }

    #[test]
    fn error_on_mismatched_tags() {
        let err = parse_document("t", "<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
        assert!(err.to_string().contains("XML parse error"));
    }

    #[test]
    fn error_on_trailing_garbage() {
        assert!(parse_document("t", "<a/>junk").is_err());
    }

    #[test]
    fn error_on_empty_input() {
        assert!(parse_document("t", "   ").is_err());
    }

    #[test]
    fn error_on_unterminated_attribute() {
        assert!(parse_document("t", "<a x=\"1></a>").is_err());
        assert!(parse_document("t", "<a x=1></a>").is_err());
    }

    #[test]
    fn doctype_is_skipped() {
        let xml = "<!DOCTYPE catalog SYSTEM \"catalog.dtd\"><catalog/>";
        let doc = parse_document("t", xml).unwrap();
        assert_eq!(doc.node(doc.root().unwrap()).tag(), Some("catalog"));
    }
}
