//! Structural summaries ("shapes") of XML documents.
//!
//! Schema specialization (Section 5) "exploits regularity in the structure of
//! documents": highly-structured tree patterns (e.g. the `author` entity of
//! Figure 6) are modelled as tuples of a virtual relation. The inference of
//! these patterns needs a DTD-like structural description of the document;
//! [`XmlShape`] is that description, either written by hand (the domain
//! expert) or inferred from an instance ([`XmlShape::infer`], playing the role
//! of STORED / hybrid inlining).

use crate::doc::{Document, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How many times a child element may occur under its parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Multiplicity {
    /// Exactly once in every instance seen.
    One,
    /// At most once.
    Optional,
    /// Any number of times.
    Many,
}

impl Multiplicity {
    /// Combine an observed count into the multiplicity.
    fn observe(self, count: usize) -> Multiplicity {
        match (self, count) {
            (Multiplicity::Many, _) | (_, 2..) => Multiplicity::Many,
            (Multiplicity::Optional, _) | (_, 0) => Multiplicity::Optional,
            (Multiplicity::One, 1) => Multiplicity::One,
        }
    }

    /// Is the child guaranteed to appear at most once (so it can be inlined
    /// into the parent's relation by hybrid inlining)?
    pub fn is_single(&self) -> bool {
        matches!(self, Multiplicity::One | Multiplicity::Optional)
    }
}

/// The shape of one element type.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShapeElement {
    /// Tag name.
    pub tag: String,
    /// Child element shapes with multiplicities, keyed by tag (ordered).
    pub children: BTreeMap<String, (ShapeElement, Multiplicity)>,
    /// Whether instances carry text content.
    pub has_text: bool,
    /// Attribute names observed.
    pub attributes: Vec<String>,
}

impl ShapeElement {
    /// A leaf element carrying text.
    pub fn leaf(tag: &str) -> ShapeElement {
        ShapeElement {
            tag: tag.to_string(),
            children: BTreeMap::new(),
            has_text: true,
            attributes: Vec::new(),
        }
    }

    /// An inner element (no text).
    pub fn inner(tag: &str) -> ShapeElement {
        ShapeElement {
            tag: tag.to_string(),
            children: BTreeMap::new(),
            has_text: false,
            attributes: Vec::new(),
        }
    }

    /// Builder: add a child shape.
    pub fn with_child(mut self, child: ShapeElement, mult: Multiplicity) -> ShapeElement {
        self.children.insert(child.tag.clone(), (child, mult));
        self
    }

    /// Builder: add an attribute name.
    pub fn with_attribute(mut self, name: &str) -> ShapeElement {
        self.attributes.push(name.to_string());
        self
    }

    /// Is this a leaf (no element children)?
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Total number of element types in this subtree (including self).
    pub fn size(&self) -> usize {
        1 + self.children.values().map(|(c, _)| c.size()).sum::<usize>()
    }

    /// Depth of the subtree.
    pub fn depth(&self) -> usize {
        1 + self.children.values().map(|(c, _)| c.depth()).max().unwrap_or(0)
    }

    /// The tags of children that occur at most once (inlineable by hybrid
    /// inlining) and of children that repeat.
    pub fn partition_children(&self) -> (Vec<&str>, Vec<&str>) {
        let mut single = Vec::new();
        let mut repeated = Vec::new();
        for (tag, (_, m)) in &self.children {
            if m.is_single() {
                single.push(tag.as_str());
            } else {
                repeated.push(tag.as_str());
            }
        }
        (single, repeated)
    }
}

/// The shape of a whole document.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct XmlShape {
    /// Document name the shape describes.
    pub document: String,
    /// Root element shape.
    pub root: ShapeElement,
}

impl XmlShape {
    /// Build a shape explicitly.
    pub fn new(document: &str, root: ShapeElement) -> XmlShape {
        XmlShape { document: document.to_string(), root }
    }

    /// Infer a shape from a document instance by merging the structure of all
    /// elements with the same tag (per parent-tag context).
    pub fn infer(doc: &Document) -> Option<XmlShape> {
        let root = doc.root()?;
        Some(XmlShape { document: doc.name.clone(), root: infer_element(doc, root) })
    }

    /// Find the shape of the element with the given tag, searching the whole
    /// shape tree (first match in depth-first order).
    pub fn find(&self, tag: &str) -> Option<&ShapeElement> {
        fn go<'a>(e: &'a ShapeElement, tag: &str) -> Option<&'a ShapeElement> {
            if e.tag == tag {
                return Some(e);
            }
            for (c, _) in e.children.values() {
                if let Some(found) = go(c, tag) {
                    return Some(found);
                }
            }
            None
        }
        go(&self.root, tag)
    }

    /// Total number of element types described.
    pub fn size(&self) -> usize {
        self.root.size()
    }
}

fn infer_element(doc: &Document, node: NodeId) -> ShapeElement {
    let tag = doc.node(node).tag().unwrap_or("#text").to_string();
    let mut shape = ShapeElement {
        tag,
        children: BTreeMap::new(),
        has_text: !doc.text_of(node).is_empty(),
        attributes: doc.node(node).attributes.iter().map(|(n, _)| n.clone()).collect(),
    };
    // Group children by tag, merging their shapes and tracking counts.
    let mut groups: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
    for c in doc.child_elements(node) {
        let ctag = doc.node(c).tag().unwrap_or("#text").to_string();
        groups.entry(ctag).or_default().push(c);
    }
    for (ctag, nodes) in groups {
        let mut merged: Option<ShapeElement> = None;
        for n in &nodes {
            let s = infer_element(doc, *n);
            merged = Some(match merged {
                None => s,
                Some(prev) => merge(prev, s),
            });
        }
        let mult = Multiplicity::One.observe(nodes.len());
        shape.children.insert(ctag, (merged.expect("non-empty group"), mult));
    }
    shape
}

fn merge(mut a: ShapeElement, b: ShapeElement) -> ShapeElement {
    a.has_text = a.has_text || b.has_text;
    for attr in b.attributes {
        if !a.attributes.contains(&attr) {
            a.attributes.push(attr);
        }
    }
    let b_tags: Vec<String> = b.children.keys().cloned().collect();
    for (tag, (bshape, bmult)) in b.children {
        match a.children.remove(&tag) {
            None => {
                // Present in one sibling but not another ⇒ at most optional.
                let m = match bmult {
                    Multiplicity::Many => Multiplicity::Many,
                    _ => Multiplicity::Optional,
                };
                a.children.insert(tag, (bshape, m));
            }
            Some((ashape, amult)) => {
                let m = match (amult, bmult) {
                    (Multiplicity::Many, _) | (_, Multiplicity::Many) => Multiplicity::Many,
                    (Multiplicity::Optional, _) | (_, Multiplicity::Optional) => {
                        Multiplicity::Optional
                    }
                    _ => Multiplicity::One,
                };
                a.children.insert(tag, (merge(ashape, bshape), m));
            }
        }
    }
    // Children of `a` not present in `b` occur zero times in some sibling:
    // downgrade "exactly once" to "optional".
    for (tag, (_, mult)) in a.children.iter_mut() {
        if !b_tags.contains(tag) && *mult == Multiplicity::One {
            *mult = Multiplicity::Optional;
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    /// Figure 6 of the paper: author entities with name(first,last) and
    /// address(street,city,state,zip).
    fn author_shape() -> ShapeElement {
        ShapeElement::inner("author")
            .with_child(
                ShapeElement::inner("name")
                    .with_child(ShapeElement::leaf("first"), Multiplicity::One)
                    .with_child(ShapeElement::leaf("last"), Multiplicity::One),
                Multiplicity::One,
            )
            .with_child(
                ShapeElement::inner("address")
                    .with_child(ShapeElement::leaf("street"), Multiplicity::One)
                    .with_child(ShapeElement::leaf("city"), Multiplicity::One)
                    .with_child(ShapeElement::leaf("state"), Multiplicity::One)
                    .with_child(ShapeElement::leaf("zip"), Multiplicity::One),
                Multiplicity::One,
            )
    }

    #[test]
    fn explicit_shape_construction() {
        let author = author_shape();
        assert_eq!(author.size(), 9);
        assert_eq!(author.depth(), 3);
        assert!(!author.is_leaf());
        let (single, repeated) = author.partition_children();
        assert_eq!(single, vec!["address", "name"]);
        assert!(repeated.is_empty());
    }

    #[test]
    fn inference_from_regular_document() {
        let doc = parse_document(
            "authors.xml",
            r#"<authors>
                 <author><name><first>Alin</first><last>Deutsch</last></name>
                         <address><street>x</street><city>SD</city><state>CA</state><zip>1</zip></address></author>
                 <author><name><first>Val</first><last>Tannen</last></name>
                         <address><street>y</street><city>PH</city><state>PA</state><zip>2</zip></address></author>
               </authors>"#,
        )
        .unwrap();
        let shape = XmlShape::infer(&doc).unwrap();
        assert_eq!(shape.root.tag, "authors");
        let author = shape.find("author").unwrap();
        assert_eq!(author.size(), 9);
        // author repeats under authors.
        assert_eq!(shape.root.children["author"].1, Multiplicity::Many);
        // name occurs exactly once under author.
        assert_eq!(author.children["name"].1, Multiplicity::One);
        assert!(shape.find("city").unwrap().is_leaf());
        assert!(shape.find("nonexistent").is_none());
    }

    #[test]
    fn inference_detects_irregularity() {
        // Second drug has no notes: notes becomes Optional; note repeats: Many.
        let doc = parse_document(
            "catalog.xml",
            r#"<catalog>
                 <drug><name>a</name><notes><note>n1</note><note>n2</note></notes></drug>
                 <drug><name>b</name></drug>
               </catalog>"#,
        )
        .unwrap();
        let shape = XmlShape::infer(&doc).unwrap();
        let drug = shape.find("drug").unwrap();
        assert_eq!(drug.children["name"].1, Multiplicity::One);
        assert_eq!(drug.children["notes"].1, Multiplicity::Optional);
        let notes = shape.find("notes").unwrap();
        assert_eq!(notes.children["note"].1, Multiplicity::Many);
        let (single, repeated) = drug.partition_children();
        assert_eq!(single, vec!["name", "notes"]);
        assert!(repeated.is_empty());
    }

    #[test]
    fn attributes_and_text_are_recorded() {
        let doc = parse_document(
            "t.xml",
            r#"<items><item sku="1">widget</item><item sku="2" color="red">gadget</item></items>"#,
        )
        .unwrap();
        let shape = XmlShape::infer(&doc).unwrap();
        let item = shape.find("item").unwrap();
        assert!(item.has_text);
        assert!(item.attributes.contains(&"sku".to_string()));
        assert!(item.attributes.contains(&"color".to_string()));
    }

    #[test]
    fn infer_on_empty_document_is_none() {
        let d = Document::new("empty.xml");
        assert!(XmlShape::infer(&d).is_none());
    }

    #[test]
    fn multiplicity_observation_rules() {
        assert_eq!(Multiplicity::One.observe(1), Multiplicity::One);
        assert_eq!(Multiplicity::One.observe(0), Multiplicity::Optional);
        assert_eq!(Multiplicity::One.observe(3), Multiplicity::Many);
        assert_eq!(Multiplicity::Optional.observe(1), Multiplicity::Optional);
        assert_eq!(Multiplicity::Many.observe(1), Multiplicity::Many);
        assert!(Multiplicity::Optional.is_single());
        assert!(!Multiplicity::Many.is_single());
    }
}
