//! The XMark-like publishing scenario (Section 4.2): realistic queries over
//! an auction site document with redundant relational views.
//!
//! Run with `cargo run --release --example xmark_publishing`.

use mars_workloads::xmark;
use std::time::Instant;

fn main() {
    let system = xmark::mars(true);
    let (_, db) = xmark::populate(50, 20, 40);

    for q in xmark::query_suite() {
        let start = Instant::now();
        let block = system.reformulate_xbind(&q);
        let elapsed = start.elapsed();
        println!("{}", q.name);
        println!("  reformulation time: {elapsed:?}");
        match block.result.best_or_initial() {
            Some(best) => {
                let answers = db.query(best).len();
                println!(
                    "  best reformulation: {} atoms, {} answers over the views",
                    best.body.len(),
                    answers
                );
            }
            None => println!("  no reformulation"),
        }
    }
}
