//! The XML star scenario of Section 4.1: redundant materialized views make
//! exponentially many reformulations possible; MARS enumerates the minimal
//! ones and picks the cheapest.
//!
//! Run with `cargo run --release --example star_publishing`.

use mars::MarsOptions;
use mars_workloads::star::StarConfig;
use std::collections::HashMap;

fn main() {
    let nc = 5;
    let cfg = StarConfig::figure5(nc);
    println!("star configuration: NC = {nc}, NV = {}", cfg.nv);

    let mars = cfg.mars(MarsOptions::specialized().exhaustive());
    let block = mars.reformulate_xbind(&cfg.client_query());

    println!("universal plan: {} atoms", block.result.stats.universal_plan_atoms);
    println!(
        "minimal reformulations found: {} (expected 2^NV = {})",
        block.result.minimal.len(),
        1usize << cfg.nv
    );
    if block.result.stats.backchase_truncated {
        eprintln!(
            "WARNING: backchase truncated at max_candidates — the enumeration \
             is incomplete and the count above cannot be trusted"
        );
    }
    if let Some((best, cost)) = &block.result.best {
        println!("best reformulation (cost {cost:.1}): {best}");
    }

    // Execute both the unreformulated query (naive XML engine) and the best
    // reformulation (relational engine over the materialized views and
    // specialization relations).
    let (xml, db) = cfg.populate(5, 4, 1);
    let unreformulated = xml.eval_xbind(&cfg.client_query(), &HashMap::new());
    let reformulated = block.result.best_or_initial().map(|q| db.query(q)).unwrap_or_default();
    println!(
        "answers: unreformulated = {}, reformulated over views = {}",
        unreformulated.len(),
        reformulated.len()
    );
}
