//! The XML star scenario of Section 4.1: redundant materialized views make
//! exponentially many reformulations possible; MARS enumerates the minimal
//! ones and picks the cheapest.
//!
//! Run with `cargo run --release --example star_publishing [-- --nc N --threads T]`
//! (defaults: NC = 5, 1 backchase worker thread).

use mars::MarsOptions;
use mars_workloads::star::StarConfig;
use std::collections::HashMap;

/// Parse `--nc N` / `--threads T`, rejecting anything malformed (exit 2).
fn parse_args() -> (usize, usize) {
    let mut nc = 5usize;
    let mut threads = 1usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let target: &mut usize = match arg.as_str() {
            "--nc" => &mut nc,
            "--threads" => &mut threads,
            other => {
                eprintln!("error: unknown argument {other:?} (expected --nc N or --threads T)");
                std::process::exit(2);
            }
        };
        let value = it.next().unwrap_or_else(|| {
            eprintln!("error: {arg} requires a value");
            std::process::exit(2);
        });
        *target = value.parse().unwrap_or_else(|_| {
            eprintln!("error: invalid {arg} value: {value:?} (expected a number)");
            std::process::exit(2);
        });
        if *target < 1 {
            eprintln!("error: {arg} must be at least 1");
            std::process::exit(2);
        }
    }
    (nc, threads)
}

fn main() {
    let (nc, threads) = parse_args();
    let cfg = StarConfig::figure5(nc);
    println!("star configuration: NC = {nc}, NV = {}, threads = {threads}", cfg.nv);

    let mars = cfg.mars(MarsOptions::specialized().exhaustive().with_threads(threads));
    let block = mars.reformulate_xbind(&cfg.client_query());

    println!("universal plan: {} atoms", block.result.stats.universal_plan_atoms);
    println!(
        "minimal reformulations found: {} (expected 2^NV = {})",
        block.result.minimal.len(),
        1usize << cfg.nv
    );
    if block.result.stats.backchase_truncated {
        eprintln!(
            "WARNING: backchase truncated at max_candidates — the enumeration \
             is incomplete and the count above cannot be trusted"
        );
    }
    if let Some((best, cost)) = &block.result.best {
        println!("best reformulation (cost {cost:.1}): {best}");
    }

    // Execute both the unreformulated query (naive XML engine) and the best
    // reformulation (relational engine over the materialized views and
    // specialization relations).
    let (xml, db) = cfg.populate(5, 4, 1);
    let unreformulated = xml.eval_xbind(&cfg.client_query(), &HashMap::new()).unwrap();
    let reformulated = block.result.best_or_initial().map(|q| db.query(q)).unwrap_or_default();
    println!(
        "answers: unreformulated = {}, reformulated over views = {}",
        unreformulated.len(),
        reformulated.len()
    );
}
