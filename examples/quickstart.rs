//! Quickstart: publish a proprietary table as XML, pose an XQuery against the
//! published document, and let MARS reformulate it to SQL over the table.
//!
//! Run with `cargo run --example quickstart`.

use mars::{Mars, SchemaCorrespondence};
use mars_grex::ViewDef;
use mars_xquery::{XBindAtom, XBindQuery, XBindTerm};

fn main() {
    // Proprietary storage: a relational table bookRel(title, author).
    // Published schema: bib.xml with one <book><title/><author/></book> per row.
    let publish_body =
        XBindQuery::new("PubMap").with_head(&["t", "a"]).with_atom(XBindAtom::Relational {
            relation: "bookRel".to_string(),
            args: vec![XBindTerm::var("t"), XBindTerm::var("a")],
        });
    let gav = ViewDef::xml_flat("PubMap", publish_body, "bib.xml", "book", &["title", "author"]);

    let correspondence = SchemaCorrespondence {
        public_documents: vec!["bib.xml".to_string()],
        gav_views: vec![gav],
        proprietary_relations: vec!["bookRel".to_string()],
        ..Default::default()
    };
    let mars = Mars::new(correspondence);

    // A client XQuery against the *published* document.
    let xquery = "for $b in //book $a in $b/author/text() $t in $b/title/text() \
                  return <entry><who>$a</who><what>$t</what></entry>";
    let result = mars.reformulate_xquery(xquery, "bib.xml").expect("parses");

    for block in &result.blocks {
        println!("navigation block {}:", block.name);
        println!("  compiled over GReX: {} atoms", block.compiled.body.len());
        match block.result.best_or_initial() {
            Some(best) => {
                println!("  best reformulation: {best}");
                println!("  as SQL:\n{}", block.sql.as_deref().unwrap_or("<none>"));
            }
            None => println!("  no reformulation found"),
        }
    }
    println!("total reformulation time: {:?}", result.total);
}
