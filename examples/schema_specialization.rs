//! Schema specialization (Section 5): infer Author-style entity relations
//! from a regular document and compare the size of the compiled queries with
//! and without specialization.
//!
//! Run with `cargo run --example schema_specialization`.

use mars_grex::{compile_xbind, CompileContext};
use mars_specialize::{infer_specializations, specialize_query};
use mars_xml::{parse_document, XmlShape};
use mars_xquery::{XBindAtom, XBindQuery};

fn main() {
    let doc = parse_document(
        "pubs.xml",
        r#"<pubs>
             <author><name><first>Alin</first><last>Deutsch</last></name>
               <address><street>x</street><city>San Diego</city><state>CA</state><zip>1</zip></address></author>
             <author><name><first>Val</first><last>Tannen</last></name>
               <address><street>y</street><city>Philadelphia</city><state>PA</state><zip>2</zip></address></author>
             <publisher><address><city>Philadelphia</city></address></publisher>
           </pubs>"#,
    )
    .unwrap();

    let shape = XmlShape::infer(&doc).unwrap();
    let mappings = infer_specializations(&shape);
    println!("inferred specializations:");
    for m in &mappings {
        println!("  {}({} columns) for {} entities", m.relation, m.arity(), m.entity_path);
    }

    // The Section 5.1 query: last names of authors living in a publisher city.
    let query = XBindQuery::new("Xb")
        .with_head(&["l"])
        .with_atom(XBindAtom::AbsolutePath {
            document: "pubs.xml".into(),
            path: mars_xml::parse_path("//author").unwrap(),
            var: "id".into(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: mars_xml::parse_path("./name/last/text()").unwrap(),
            source: "id".into(),
            var: "l".into(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: mars_xml::parse_path("./address/city/text()").unwrap(),
            source: "id".into(),
            var: "c".into(),
        })
        .with_atom(XBindAtom::AbsolutePath {
            document: "pubs.xml".into(),
            path: mars_xml::parse_path("//publisher/address/city/text()").unwrap(),
            var: "c".into(),
        });

    let mut ctx = CompileContext::new();
    let plain = compile_xbind(&mut ctx, &query);
    let specialized = specialize_query(&query, &mappings);
    let compiled_spec = compile_xbind(&mut ctx, &specialized);
    println!("compiled atoms without specialization: {}", plain.body.len());
    println!("compiled atoms with specialization:    {}", compiled_spec.body.len());
}
