//! Golden-file tests for SQL generation.
//!
//! Snapshots the SQL emitted for the chosen reformulation of the paper's
//! scenarios, so later cost-model or join-order changes cannot silently alter
//! the emitted SQL.
//!
//! # Regenerating the snapshots
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_sql
//! ```
//!
//! then review the diff under `tests/golden/` like any other code change.
//! The snapshots are sensitive to the chase's *binding order*: fresh
//! (existential) variables are numbered in the order chase steps fire, so an
//! engine change that reorders premise bindings renames variables throughout
//! the emitted SQL and the goldens must be regenerated. The semi-naive
//! delta-seeded joins were specifically built to preserve the full join's
//! binding order (trail-sorted merge — see `evaluate_bindings_delta`), which
//! is why these snapshots survived that change byte-for-byte; an engine
//! change that intentionally alters the order should regenerate them and
//! say so in its commit message.

use mars::MarsOptions;
use mars_system::storage::sql_for_query;
use mars_workloads::{example11, star::StarConfig};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected.trim(),
        actual.trim(),
        "emitted SQL for {name} diverged from the golden snapshot; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn example_1_1_best_reformulation_sql_is_stable() {
    let system = example11::mars();
    let block = system.reformulate_xbind(&example11::client_query());
    let best = block.result.best_or_initial().expect("example 1.1 must reformulate");
    assert_matches_golden("example11_best.sql", &sql_for_query(best).expect("safe query"));
}

#[test]
fn star_best_reformulation_sql_is_stable() {
    let cfg = StarConfig::figure5(3);
    let mars = cfg.mars(MarsOptions::specialized());
    let block = mars.reformulate_xbind(&cfg.client_query());
    let best = block.result.best_or_initial().expect("star query must reformulate");
    assert_matches_golden("star_nc3_best.sql", &sql_for_query(best).expect("safe query"));
}

#[test]
fn star_initial_reformulation_sql_is_stable() {
    let cfg = StarConfig::figure5(3);
    let mars = cfg.mars(MarsOptions::specialized());
    let block = mars.reformulate_xbind(&cfg.client_query());
    let initial =
        block.result.initial.as_ref().expect("star query must have an initial reformulation");
    assert_matches_golden("star_nc3_initial.sql", &sql_for_query(initial).expect("safe query"));
}
