//! Golden-file tests for physical plan compilation.
//!
//! Snapshots the rendered physical plan ([`mars_cost::physical_plan`] via
//! `RelationalDatabase::plan`) for the chosen reformulations of the paper's
//! scenarios over deterministically populated stores, so planner changes —
//! join order, build-side choice, pruning, pushdown — cannot silently alter
//! plan shapes. The planner steers cost only, never results (the executors
//! are property-tested byte-identical for any plan), so a golden diff here is
//! a *performance* review, not a correctness one.
//!
//! # Regenerating the snapshots
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_plans
//! ```
//!
//! then review the diff under `tests/golden/plans/` like any other code
//! change. The snapshots are sensitive to the chase's binding order (variable
//! names in the rendered plans) and to the workload generators' document
//! seeds (the `~N rows` estimates come from exact statistics of the populated
//! stores).

use mars::MarsOptions;
use mars_system::cq::{Atom, ConjunctiveQuery, Term};
use mars_system::storage::RelationalDatabase;
use mars_workloads::{example11, star::StarConfig};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/plans").join(name)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected.trim(),
        actual.trim(),
        "physical plan for {name} diverged from the golden snapshot; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

/// The star's best reformulation planned over the populated views: the plan
/// must prune the unused specialization columns and pick build sides from the
/// materialized cardinalities.
#[test]
fn star_best_reformulation_plan_is_stable() {
    let cfg = StarConfig::figure5(3);
    let (_xml, db) = cfg.populate(5, 4, 17);
    let mars = cfg.mars(MarsOptions::specialized());
    let block = mars.reformulate_xbind(&cfg.client_query());
    let best = block.result.best_or_initial().expect("star query must reformulate");
    assert_matches_golden("star_nc3_best.plan.txt", &db.plan(best).to_string());
}

/// The star's initial (pre-minimization) reformulation plan over the same
/// store — a wider join whose order the statistics still drive.
#[test]
fn star_initial_reformulation_plan_is_stable() {
    let cfg = StarConfig::figure5(3);
    let (_xml, db) = cfg.populate(5, 4, 17);
    let mars = cfg.mars(MarsOptions::specialized());
    let block = mars.reformulate_xbind(&cfg.client_query());
    let initial =
        block.result.initial.as_ref().expect("star query must have an initial reformulation");
    assert_matches_golden("star_nc3_initial.plan.txt", &db.plan(initial).to_string());
}

/// Example 1.1's best reformulation planned over its populated stores.
#[test]
fn example_1_1_best_reformulation_plan_is_stable() {
    let (_xml, db) = example11::populate(4);
    let system = example11::mars();
    let block = system.reformulate_xbind(&example11::client_query());
    let best = block.result.best_or_initial().expect("example 1.1 must reformulate");
    assert_matches_golden("example11_best.plan.txt", &db.plan(best).to_string());
}

/// A hand-written query over a skewed catalog, pinning all three planner
/// behaviors in one snapshot: the `'shipped'` constant is pushed into the
/// scan, the unused `day` column is pruned, and the selective `orders` side
/// is both joined first and chosen as the build side.
#[test]
fn pushdown_pruning_and_build_side_are_visible() {
    let mut db = RelationalDatabase::new();
    for (c, item, status, day) in [
        ("ann", "tea", "shipped", "mon"),
        ("ann", "mugs", "pending", "tue"),
        ("bob", "tea", "pending", "tue"),
        ("cal", "pens", "shipped", "wed"),
        ("dee", "ink", "pending", "thu"),
        ("dee", "tea", "pending", "fri"),
    ] {
        db.insert_strs("orders", &[c, item, status, day]);
    }
    for (c, region) in [("ann", "EU"), ("bob", "US"), ("cal", "US"), ("dee", "EU")] {
        db.insert_strs("customers", &[c, region]);
    }
    let q = ConjunctiveQuery::new("Q")
        .with_head(vec![Term::var("item"), Term::var("region")])
        .with_body(vec![
            Atom::named(
                "orders",
                vec![
                    Term::var("c"),
                    Term::var("item"),
                    Term::constant_str("shipped"),
                    Term::var("day"),
                ],
            ),
            Atom::named("customers", vec![Term::var("c"), Term::var("region")]),
        ])
        .with_inequality(Term::var("region"), Term::constant_str("EU"));
    assert_matches_golden("pushdown_demo.plan.txt", &db.plan(&q).to_string());
    // The executed rows must agree with the naive evaluator regardless of
    // what the snapshot pinned.
    assert_eq!(db.query(&q), db.query_naive(&q));
    assert_eq!(db.query_strings(&q), vec![vec!["pens".to_string(), "US".to_string()]]);
}
