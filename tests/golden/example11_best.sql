SELECT DISTINCT t8.c1, t3.c1
FROM child_cacheEntry.xml AS t0, child_cacheEntry.xml AS t1, child_cacheEntry.xml AS t2, drugPrice AS t3, root_cacheEntry.xml AS t4, tag_cacheEntry.xml AS t5, tag_cacheEntry.xml AS t6, tag_cacheEntry.xml AS t7, text_cacheEntry.xml AS t8, text_cacheEntry.xml AS t9
WHERE t1.c0 = t0.c0
  AND t2.c1 = t0.c0
  AND t4.c0 = t2.c0
  AND t5.c0 = t0.c0
  AND t5.c1 = 'entry'
  AND t6.c0 = t0.c1
  AND t6.c1 = 'diagnosis'
  AND t7.c0 = t1.c1
  AND t7.c1 = 'drug'
  AND t8.c0 = t0.c1
  AND t9.c0 = t1.c1
  AND t9.c1 = t3.c0