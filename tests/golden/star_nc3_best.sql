SELECT DISTINCT t0.c1, t1.c2, t2.c2, t3.c2
FROM Rspec AS t0, S1spec AS t1, S2spec AS t2, S3spec AS t3
WHERE t1.c1 = t0.c2
  AND t2.c1 = t0.c3
  AND t3.c1 = t0.c4