SELECT DISTINCT t0.c0, t0.c1, t0.c2, t1.c2
FROM V1 AS t0, V2 AS t1
WHERE t1.c0 = t0.c0
  AND t1.c1 = t0.c2