//! Property-based tests over the core data structures and algorithms.

use mars_system::chase::{chase_to_universal_plan, ChaseOptions, SymbolicInstance};
use mars_system::cq::{
    contained_in, find_all_homomorphisms, naive_chase, Atom, ChaseBudget, ConjunctiveQuery,
    ContainmentOptions, Ded, Substitution, Term,
};
use proptest::prelude::*;

/// Generate a random chain query R0(x0,x1), R1(x1,x2), ... (bounded length).
fn chain_query(len: usize, shared_relation: bool) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new("chain").with_head(vec![Term::var("x0")]);
    for i in 0..len {
        let rel = if shared_relation { "R".to_string() } else { format!("R{i}") };
        q = q.with_atom(Atom::named(
            &rel,
            vec![Term::var(&format!("x{i}")), Term::var(&format!("x{}", i + 1))],
        ));
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every query is contained in itself (reflexivity of containment).
    #[test]
    fn containment_is_reflexive(len in 1usize..6, shared in proptest::bool::ANY) {
        let q = chain_query(len, shared);
        prop_assert!(contained_in(&q, &q, &[], &ContainmentOptions::small()));
    }

    /// A chain query is contained in every prefix of itself (projection).
    #[test]
    fn chains_are_contained_in_prefixes(len in 2usize..6) {
        let q = chain_query(len, false);
        let prefix = q.subquery(&(0..len - 1).collect::<Vec<_>>());
        prop_assert!(contained_in(&q, &prefix, &[], &ContainmentOptions::small()));
        prop_assert!(!contained_in(&prefix, &q, &[], &ContainmentOptions::small()));
    }

    /// The set-oriented premise evaluation finds exactly as many homomorphisms
    /// as the backtracking search.
    #[test]
    fn bulk_and_backtracking_homomorphisms_agree(
        n_atoms in 1usize..12,
        pattern_len in 1usize..3,
    ) {
        let mut target_atoms = Vec::new();
        for i in 0..n_atoms {
            target_atoms.push(Atom::named(
                "R",
                vec![Term::var(&format!("a{}", i % 4)), Term::var(&format!("a{}", (i + 1) % 5))],
            ));
        }
        let target_q = ConjunctiveQuery::new("T").with_body(target_atoms.clone());
        let inst = SymbolicInstance::from_query(&target_q);
        let pattern = chain_query(pattern_len, true).body;

        let bulk = mars_system::chase::evaluate_bindings(&pattern, &[], &inst, &Substitution::new());
        let index = mars_system::cq::AtomIndex::new(&target_q.body);
        let slow = find_all_homomorphisms(&pattern, &index, &Substitution::new(), None);
        prop_assert_eq!(bulk.len(), slow.len());
    }

    /// The naive chase and the set-oriented chase produce universal plans of
    /// the same size for transitive-closure style constraints.
    #[test]
    fn naive_and_fast_chase_agree_on_closure(len in 1usize..5) {
        let q = chain_query(len, true);
        let deds = vec![
            Ded::tgd(
                "copy",
                vec![Atom::named("R", vec![Term::var("x"), Term::var("y")])],
                vec![],
                vec![Atom::named("S", vec![Term::var("x"), Term::var("y")])],
            ),
            Ded::tgd(
                "strans",
                vec![
                    Atom::named("S", vec![Term::var("x"), Term::var("y")]),
                    Atom::named("S", vec![Term::var("y"), Term::var("z")]),
                ],
                vec![],
                vec![Atom::named("S", vec![Term::var("x"), Term::var("z")])],
            ),
        ];
        let naive = naive_chase(&q, &deds, &ChaseBudget::small());
        let fast = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        prop_assert!(naive.terminated());
        prop_assert!(fast.stats.completed);
        prop_assert_eq!(naive.single().unwrap().body.len(), fast.primary().body.len());
    }
}
