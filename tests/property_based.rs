//! Property-based tests over the core data structures and algorithms.

use mars_system::chase::{chase_to_universal_plan, ChaseOptions, SymbolicInstance};
use mars_system::cq::{
    contained_in, find_all_homomorphisms, naive_chase, Atom, ChaseBudget, ConjunctiveQuery,
    ContainmentOptions, Ded, Substitution, Term,
};
use proptest::prelude::*;

/// Generate a random chain query R0(x0,x1), R1(x1,x2), ... (bounded length).
fn chain_query(len: usize, shared_relation: bool) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new("chain").with_head(vec![Term::var("x0")]);
    for i in 0..len {
        let rel = if shared_relation { "R".to_string() } else { format!("R{i}") };
        q = q.with_atom(Atom::named(
            &rel,
            vec![Term::var(&format!("x{i}")), Term::var(&format!("x{}", i + 1))],
        ));
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every query is contained in itself (reflexivity of containment).
    #[test]
    fn containment_is_reflexive(len in 1usize..6, shared in proptest::bool::ANY) {
        let q = chain_query(len, shared);
        prop_assert!(contained_in(&q, &q, &[], &ContainmentOptions::small()));
    }

    /// A chain query is contained in every prefix of itself (projection).
    #[test]
    fn chains_are_contained_in_prefixes(len in 2usize..6) {
        let q = chain_query(len, false);
        let prefix = q.subquery(&(0..len - 1).collect::<Vec<_>>());
        prop_assert!(contained_in(&q, &prefix, &[], &ContainmentOptions::small()));
        prop_assert!(!contained_in(&prefix, &q, &[], &ContainmentOptions::small()));
    }

    /// The set-oriented premise evaluation finds exactly as many homomorphisms
    /// as the backtracking search.
    #[test]
    fn bulk_and_backtracking_homomorphisms_agree(
        n_atoms in 1usize..12,
        pattern_len in 1usize..3,
    ) {
        let mut target_atoms = Vec::new();
        for i in 0..n_atoms {
            target_atoms.push(Atom::named(
                "R",
                vec![Term::var(&format!("a{}", i % 4)), Term::var(&format!("a{}", (i + 1) % 5))],
            ));
        }
        let target_q = ConjunctiveQuery::new("T").with_body(target_atoms.clone());
        let inst = SymbolicInstance::from_query(&target_q);
        let pattern = chain_query(pattern_len, true).body;

        let bulk = mars_system::chase::evaluate_bindings(&pattern, &[], &inst, &Substitution::new());
        let index = mars_system::cq::AtomIndex::new(&target_q.body);
        let slow = find_all_homomorphisms(&pattern, &index, &Substitution::new(), None);
        prop_assert_eq!(bulk.len(), slow.len());
    }

    /// The naive chase and the set-oriented chase produce universal plans of
    /// the same size for transitive-closure style constraints.
    #[test]
    fn naive_and_fast_chase_agree_on_closure(len in 1usize..5) {
        let q = chain_query(len, true);
        let deds = vec![
            Ded::tgd(
                "copy",
                vec![Atom::named("R", vec![Term::var("x"), Term::var("y")])],
                vec![],
                vec![Atom::named("S", vec![Term::var("x"), Term::var("y")])],
            ),
            Ded::tgd(
                "strans",
                vec![
                    Atom::named("S", vec![Term::var("x"), Term::var("y")]),
                    Atom::named("S", vec![Term::var("y"), Term::var("z")]),
                ],
                vec![],
                vec![Atom::named("S", vec![Term::var("x"), Term::var("z")])],
            ),
        ];
        let naive = naive_chase(&q, &deds, &ChaseBudget::small());
        let fast = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        prop_assert!(naive.terminated());
        prop_assert!(fast.stats.completed);
        prop_assert_eq!(naive.single().unwrap().body.len(), fast.primary().body.len());
    }
}

/// A universal plan's fingerprint: branches, renamings and statistics with
/// the wall-clock field zeroed — the byte-identical contract of the
/// semi-naive joins and of the parallel branch worklist.
fn plan_fingerprint(up: &mars_system::chase::UniversalPlan) -> String {
    let stats = mars_system::chase::ChaseStats {
        duration: std::time::Duration::default(),
        ..up.stats.clone()
    };
    format!("{:?} {:?} {:?}", up.branches, up.renamings, stats)
}

/// A randomized DED set over the chain relations: per-relation copy TGDs, a
/// transitive closure, optionally a key EGD on R0 and a disjunctive DED on
/// the last relation — enough variety to exercise delta watermarks,
/// watermark resets (EGD rewrites) and branch splits.
fn random_deds(len: usize, copy_mask: u8, with_egd: bool, with_disjunction: bool) -> Vec<Ded> {
    use mars_system::cq::{Conjunct, Variable};
    let mut deds = vec![
        Ded::tgd(
            "copy",
            vec![Atom::named("R", vec![Term::var("x"), Term::var("y")])],
            vec![],
            vec![Atom::named("S", vec![Term::var("x"), Term::var("y")])],
        ),
        Ded::tgd(
            "strans",
            vec![
                Atom::named("S", vec![Term::var("x"), Term::var("y")]),
                Atom::named("S", vec![Term::var("y"), Term::var("z")]),
            ],
            vec![],
            vec![Atom::named("S", vec![Term::var("x"), Term::var("z")])],
        ),
    ];
    for i in 0..len.min(8) {
        if copy_mask & (1 << i) != 0 {
            deds.push(Ded::tgd(
                &format!("grow{i}"),
                vec![Atom::named(&format!("R{i}"), vec![Term::var("x"), Term::var("y")])],
                vec![Variable::named("w")],
                vec![Atom::named("G", vec![Term::var("y"), Term::var("w")])],
            ));
        }
    }
    if with_egd {
        deds.push(Ded::egd(
            "key",
            vec![
                Atom::named("R0", vec![Term::var("u"), Term::var("p")]),
                Atom::named("R0", vec![Term::var("u"), Term::var("q")]),
            ],
            Term::var("p"),
            Term::var("q"),
        ));
    }
    if with_disjunction {
        deds.push(Ded::disjunctive(
            "split",
            vec![Atom::named("G", vec![Term::var("x"), Term::var("y")])],
            vec![
                Conjunct::atoms(vec![Atom::named("L", vec![Term::var("x")])]),
                Conjunct::atoms(vec![Atom::named("M", vec![Term::var("x")])]),
            ],
        ));
    }
    deds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The semi-naive delta-seeded chase must produce a universal plan
    /// byte-identical to the naive full-join chase across random DED sets
    /// (branches, renamings and statistics all agree).
    #[test]
    fn seminaive_chase_is_byte_identical_to_naive(
        len in 1usize..4,
        shared in proptest::bool::ANY,
        copy_mask in 0u8..16,
        with_egd in proptest::bool::ANY,
        with_disjunction in proptest::bool::ANY,
    ) {
        let mut q = chain_query(len, shared);
        if with_egd {
            // Two R0 facts sharing a key trigger the EGD.
            q = q
                .with_atom(Atom::named("R0", vec![Term::var("k"), Term::var("x0")]))
                .with_atom(Atom::named("R0", vec![Term::var("k"), Term::var("e")]));
        }
        let deds = random_deds(len, copy_mask, with_egd, with_disjunction);
        let semi = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let naive = chase_to_universal_plan(&q, &deds, &ChaseOptions::default().with_naive_joins());
        prop_assert_eq!(plan_fingerprint(&semi), plan_fingerprint(&naive));
    }

    /// The byte-identical contract of the adaptive join planner: across
    /// random DED sets (EGD rewrites resetting statistics, disjunctive
    /// splits cloning them, delta watermarks windowing the joins), the
    /// statistics-driven scan/probe choice must produce a universal plan
    /// byte-identical to the fixed-threshold fallback at any threshold —
    /// including the degenerate always-probe (0) and always-scan (MAX)
    /// extremes.
    #[test]
    fn adaptive_and_fixed_threshold_chases_are_byte_identical(
        len in 1usize..4,
        shared in proptest::bool::ANY,
        copy_mask in 0u8..16,
        with_egd in proptest::bool::ANY,
        with_disjunction in proptest::bool::ANY,
        threshold_pick in 0usize..4,
    ) {
        let mut q = chain_query(len, shared);
        if with_egd {
            q = q
                .with_atom(Atom::named("R0", vec![Term::var("k"), Term::var("x0")]))
                .with_atom(Atom::named("R0", vec![Term::var("k"), Term::var("e")]));
        }
        let deds = random_deds(len, copy_mask, with_egd, with_disjunction);
        let adaptive = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        let threshold = [0usize, 2, 8, usize::MAX][threshold_pick];
        let fixed = chase_to_universal_plan(
            &q,
            &deds,
            &ChaseOptions::default().with_fixed_scan_threshold(threshold),
        );
        prop_assert_eq!(
            plan_fingerprint(&adaptive),
            plan_fingerprint(&fixed),
            "threshold = {}",
            threshold
        );
    }

    /// The determinism contract of the parallel branch worklist: for any
    /// randomized DED set, chasing with 2 or 4 worker threads is
    /// byte-identical to the sequential chase.
    #[test]
    fn parallel_branch_worklist_agrees_with_sequential(
        len in 1usize..4,
        copy_mask in 1u8..16,
        with_egd in proptest::bool::ANY,
    ) {
        let q = chain_query(len, false);
        // Always include the disjunctive DED so branches actually split.
        let deds = random_deds(len, copy_mask, with_egd, true);
        let sequential = chase_to_universal_plan(&q, &deds, &ChaseOptions::default());
        for threads in [2usize, 4] {
            let parallel = chase_to_universal_plan(
                &q,
                &deds,
                &ChaseOptions::default().with_threads(threads),
            );
            prop_assert_eq!(
                plan_fingerprint(&sequential),
                plan_fingerprint(&parallel),
                "threads = {}",
                threads
            );
        }
    }
}

/// Build a redundant-storage C&B engine over a length-`len` chain query:
/// every relation gets a stored proprietary copy when the corresponding bit
/// of `copy_mask` is set, and adjacent pairs additionally get a stored join
/// view when the bit of `join_mask` is set. Returns the engine and the
/// client query.
fn redundant_chain_engine(
    len: usize,
    copy_mask: u8,
    join_mask: u8,
) -> (mars_system::chase::ChaseBackchase, ConjunctiveQuery) {
    use mars_system::cq::ded::view_dependencies;
    use mars_system::cq::Predicate;
    use std::collections::HashSet;

    let q = chain_query(len, false);
    let mut deds = Vec::new();
    let mut proprietary: HashSet<Predicate> = HashSet::new();
    for i in 0..len {
        if copy_mask & (1 << i) != 0 {
            let name = format!("C{i}");
            let def = ConjunctiveQuery::new(&name)
                .with_head(vec![Term::var("a"), Term::var("b")])
                .with_body(vec![Atom::named(
                    &format!("R{i}"),
                    vec![Term::var("a"), Term::var("b")],
                )]);
            let (c, b) = view_dependencies(&name, &def);
            deds.push(c);
            deds.push(b);
            proprietary.insert(Predicate::new(&name));
        }
    }
    for i in 0..len.saturating_sub(1) {
        if join_mask & (1 << i) != 0 {
            let name = format!("J{i}");
            let def = ConjunctiveQuery::new(&name)
                .with_head(vec![Term::var("a"), Term::var("c")])
                .with_body(vec![
                    Atom::named(&format!("R{i}"), vec![Term::var("a"), Term::var("b")]),
                    Atom::named(&format!("R{}", i + 1), vec![Term::var("b"), Term::var("c")]),
                ]);
            let (c, b) = view_dependencies(&name, &def);
            deds.push(c);
            deds.push(b);
            proprietary.insert(Predicate::new(&name));
        }
    }
    (mars_system::chase::ChaseBackchase::new(deds, proprietary), q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exhaustive and cost-pruned backchase agree on the cost of the best
    /// reformulation across randomized redundant-storage setups, and the
    /// exhaustive minimal set is an antichain (no reformulation is a
    /// subquery of another) — the completeness contract of Section 2.3.
    #[test]
    fn exhaustive_and_pruned_backchase_agree(
        len in 2usize..4,
        copy_mask in 0u8..16,
        join_mask in 0u8..8,
    ) {
        use mars_system::chase::CbOptions;

        let (engine, q) = redundant_chain_engine(len, copy_mask, join_mask);
        let exhaustive = engine.clone().with_options(CbOptions::exhaustive()).reformulate(&q);
        let pruned = engine.with_options(CbOptions::default()).reformulate(&q);

        prop_assert!(!exhaustive.stats.backchase_truncated);
        prop_assert_eq!(
            pruned.best.as_ref().map(|(_, c)| *c),
            exhaustive.best.as_ref().map(|(_, c)| *c),
            "cost pruning must preserve the optimum (copies {:b}, joins {:b})",
            copy_mask,
            join_mask
        );
        // Every pruned-run reformulation also appears in the exhaustive run.
        prop_assert!(pruned.minimal.len() <= exhaustive.minimal.len());
        // Antichain: no minimal reformulation is a subquery of another.
        for (i, (a, _)) in exhaustive.minimal.iter().enumerate() {
            for (j, (b, _)) in exhaustive.minimal.iter().enumerate() {
                if i != j {
                    let subquery = a.body.iter().all(|atom| b.body.contains(atom));
                    prop_assert!(
                        !subquery,
                        "{} is a subquery of {} (copies {:b}, joins {:b})",
                        a.name, b.name, copy_mask, join_mask
                    );
                }
            }
        }
    }

    /// End-to-end: semi-naive and naive joins must reformulate identically
    /// through the full C&B pipeline (initial chase + every memoized
    /// back-chase), across randomized redundant-storage setups.
    #[test]
    fn seminaive_and_naive_reformulation_agree(
        len in 2usize..4,
        copy_mask in 0u8..16,
        join_mask in 0u8..8,
    ) {
        use mars_system::chase::CbOptions;

        let (engine, q) = redundant_chain_engine(len, copy_mask, join_mask);
        let mut naive_opts = CbOptions::exhaustive();
        naive_opts.chase = naive_opts.chase.with_naive_joins();
        naive_opts.backchase.chase = naive_opts.backchase.chase.with_naive_joins();
        let semi = engine.clone().with_options(CbOptions::exhaustive()).reformulate(&q);
        let naive = engine.with_options(naive_opts).reformulate(&q);

        prop_assert_eq!(format!("{}", semi.universal_plan), format!("{}", naive.universal_plan));
        prop_assert_eq!(semi.minimal.len(), naive.minimal.len());
        for ((qa, ca), (qb, cb)) in semi.minimal.iter().zip(&naive.minimal) {
            prop_assert_eq!(format!("{qa}"), format!("{qb}"));
            prop_assert_eq!(ca, cb);
        }
        prop_assert_eq!(semi.stats.candidates_inspected, naive.stats.candidates_inspected);
        prop_assert_eq!(semi.stats.equivalence_checks, naive.stats.equivalence_checks);
        prop_assert_eq!(semi.stats.chase.applied_steps, naive.stats.chase.applied_steps);
    }

    /// The determinism contract of the parallel backchase engine: for any
    /// redundant-storage setup and any thread count, the parallel run is
    /// identical to the sequential one — same minimal reformulations (names,
    /// bodies, costs, discovery order), same best, same candidate /
    /// equivalence-check / cache statistics, same truncation flag.
    #[test]
    fn parallel_and_sequential_backchase_agree(
        len in 2usize..4,
        copy_mask in 0u8..16,
        join_mask in 0u8..8,
        exhaustive in proptest::bool::ANY,
    ) {
        use mars_system::chase::{BackchaseOptions, CbOptions};

        let (engine, q) = redundant_chain_engine(len, copy_mask, join_mask);
        let mut opts = if exhaustive { CbOptions::exhaustive() } else { CbOptions::default() };
        let sequential = engine.clone().with_options(opts.clone()).reformulate(&q);
        for threads in [2usize, 4] {
            opts.backchase =
                BackchaseOptions { threads, ..opts.backchase.clone() };
            let parallel = engine.clone().with_options(opts.clone()).reformulate(&q);

            prop_assert_eq!(parallel.minimal.len(), sequential.minimal.len());
            for ((qa, ca), (qb, cb)) in parallel.minimal.iter().zip(&sequential.minimal) {
                prop_assert_eq!(&qa.name, &qb.name);
                prop_assert_eq!(&qa.body, &qb.body);
                prop_assert_eq!(ca, cb);
            }
            prop_assert_eq!(
                parallel.best.as_ref().map(|(q, c)| (format!("{q}"), *c)),
                sequential.best.as_ref().map(|(q, c)| (format!("{q}"), *c))
            );
            prop_assert_eq!(
                parallel.stats.candidates_inspected,
                sequential.stats.candidates_inspected
            );
            prop_assert_eq!(
                parallel.stats.equivalence_checks,
                sequential.stats.equivalence_checks
            );
            prop_assert_eq!(parallel.stats.chase_cache_hits, sequential.stats.chase_cache_hits);
            prop_assert_eq!(
                parallel.stats.backchase_truncated,
                sequential.stats.backchase_truncated
            );
        }
    }

    /// The determinism contract of the containment memo: disabling it (every
    /// candidate's containment check from scratch) must produce byte-identical
    /// reformulations, statistics and discovery order — at any thread count.
    /// Only the reuse counters (success transfers, delta searches) and the
    /// wall-clock fields may differ, and the scratch run's reuse counters
    /// must be exactly zero.
    #[test]
    fn memoized_containment_is_byte_identical_to_scratch(
        len in 2usize..4,
        copy_mask in 0u8..16,
        join_mask in 0u8..8,
        exhaustive in proptest::bool::ANY,
    ) {
        use mars_system::chase::CbOptions;

        let (engine, q) = redundant_chain_engine(len, copy_mask, join_mask);
        let base = if exhaustive { CbOptions::exhaustive() } else { CbOptions::default() };
        let memoized = engine.clone().with_options(base.clone()).reformulate(&q);
        for threads in [1usize, 2, 4] {
            let mut opts = base.clone();
            opts.backchase.threads = threads;
            opts.backchase.containment_memo = false;
            let scratch = engine.clone().with_options(opts).reformulate(&q);

            prop_assert_eq!(scratch.stats.containment_success_transfers, 0);
            prop_assert_eq!(scratch.stats.containment_delta_searches, 0);
            prop_assert_eq!(scratch.minimal.len(), memoized.minimal.len());
            for ((qa, ca), (qb, cb)) in scratch.minimal.iter().zip(&memoized.minimal) {
                prop_assert_eq!(&qa.name, &qb.name);
                prop_assert_eq!(&qa.body, &qb.body);
                prop_assert_eq!(ca, cb);
            }
            prop_assert_eq!(
                scratch.best.as_ref().map(|(q, c)| (format!("{q}"), *c)),
                memoized.best.as_ref().map(|(q, c)| (format!("{q}"), *c))
            );
            prop_assert_eq!(
                scratch.stats.candidates_inspected,
                memoized.stats.candidates_inspected
            );
            prop_assert_eq!(scratch.stats.equivalence_checks, memoized.stats.equivalence_checks);
            prop_assert_eq!(
                scratch.stats.containment_dead_cone_skips,
                memoized.stats.containment_dead_cone_skips
            );
            prop_assert_eq!(scratch.stats.backchase_truncated, memoized.stats.backchase_truncated);
        }
    }
}

/// Monotone salt for service-cache properties: every generated request gets
/// constants never seen by the process before, so each query's constants
/// first-intern in occurrence order — the regime a resident service sees
/// (fresh client values arriving over time) and the one the byte-identity
/// contract of the plan cache is stated for.
static CONSTANT_SALT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

fn fresh_constant(tag: &str) -> String {
    format!("{tag}-{}", CONSTANT_SALT.fetch_add(1, std::sync::atomic::Ordering::SeqCst))
}

/// The publishing correspondence used across the service-cache properties:
/// a proprietary table published as `bib.xml` through a GAV view, plus a
/// LAV cache of the author list.
fn service_correspondence() -> mars_system::mars::SchemaCorrespondence {
    use mars_system::xquery::{XBindAtom, XBindQuery, XBindTerm};

    let gav_body =
        XBindQuery::new("PubMap").with_head(&["t", "a"]).with_atom(XBindAtom::Relational {
            relation: "bookRel".to_string(),
            args: vec![XBindTerm::var("t"), XBindTerm::var("a")],
        });
    let gav = mars_system::grex::ViewDef::xml_flat(
        "PubMap",
        gav_body,
        "bib.xml",
        "book",
        &["title", "author"],
    );
    let lav_body = XBindQuery::new("AuthorsMap")
        .with_head(&["a"])
        .with_atom(XBindAtom::AbsolutePath {
            document: "bib.xml".to_string(),
            path: mars_system::xml::parse_path("//book").unwrap(),
            var: "b".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: mars_system::xml::parse_path("./author/text()").unwrap(),
            source: "b".to_string(),
            var: "a".to_string(),
        });
    let lav = mars_system::grex::ViewDef::relational("authorsCache", lav_body);
    mars_system::mars::SchemaCorrespondence {
        public_documents: vec!["bib.xml".to_string()],
        gav_views: vec![gav],
        lav_views: vec![lav],
        proprietary_relations: vec!["bookRel".to_string()],
        ..Default::default()
    }
}

/// A client template: titles/authors of `bib.xml` filtered on the title
/// constant `c_title` and (when `filter_author`) on the author constant
/// `c_author`. Passing the same string for both is the implicit-equality-join
/// variant: one constant value, used twice.
fn service_request(
    c_title: &str,
    filter_author: bool,
    c_author: &str,
) -> mars_system::xquery::XBindQuery {
    use mars_system::xquery::{XBindAtom, XBindQuery, XBindTerm};

    let mut q = XBindQuery::new("Client")
        .with_head(&["t", "a"])
        .with_atom(XBindAtom::AbsolutePath {
            document: "bib.xml".to_string(),
            path: mars_system::xml::parse_path("//book").unwrap(),
            var: "b".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: mars_system::xml::parse_path("./title/text()").unwrap(),
            source: "b".to_string(),
            var: "t".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: mars_system::xml::parse_path("./author/text()").unwrap(),
            source: "b".to_string(),
            var: "a".to_string(),
        })
        .with_atom(XBindAtom::Eq(XBindTerm::var("t"), XBindTerm::str(c_title)));
    if filter_author {
        q = q.with_atom(XBindAtom::Eq(XBindTerm::var("a"), XBindTerm::str(c_author)));
    }
    q
}

/// Everything a client can observe of a block reformulation, rendered to
/// bytes (durations and wall-clock statistics excluded).
fn block_bytes(block: &mars_system::mars::BlockReformulation) -> String {
    format!(
        "compiled: {}\nuniversal: {}\ninitial: {:?}\nminimal: {:?}\nbest: {:?}\nsql: {:?}",
        block.compiled,
        block.result.universal_plan,
        block.result.initial.as_ref().map(|q| format!("{q}")),
        block.result.minimal.iter().map(|(q, c)| (format!("{q}"), *c)).collect::<Vec<_>>(),
        block.result.best.as_ref().map(|(q, c)| (format!("{q}"), *c)),
        block.sql
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The plan-cache re-substitution contract: a warm hit answered by
    /// re-substituting fresh constants into the cached plan is byte-identical
    /// to reformulating the same request cold on a fresh system — across
    /// single-filter and double-filter templates, including the
    /// same-constant-twice (implicit equality join) variant.
    #[test]
    fn warm_cache_hit_is_byte_identical_to_cold(
        filter_author in proptest::bool::ANY,
        join_constants in proptest::bool::ANY,
    ) {
        use mars_system::mars::{Mars, MarsService};

        let make_request = || {
            let title = fresh_constant("title");
            let author = if join_constants { title.clone() } else { fresh_constant("author") };
            service_request(&title, filter_author, &author)
        };

        let service = MarsService::new(Mars::new(service_correspondence()));
        let first = make_request();
        service.reformulate_xbind(&first).expect("cold reformulation");

        let second = make_request();
        let warm = service.reformulate_xbind(&second).expect("warm reformulation");
        prop_assert!(service.cache_stats().hits >= 1, "the repeat must hit the cache");

        let cold = Mars::new(service_correspondence())
            .try_reformulate_xbind(&second)
            .expect("cold reformulation");
        prop_assert_eq!(block_bytes(&warm), block_bytes(&cold));
    }

    /// Shape-key separation: the same constant twice (an implicit equality
    /// join between the two filters) must never be answered from the entry
    /// of the two-distinct-constants template, or vice versa — they are
    /// different queries with different answers.
    #[test]
    fn joined_and_distinct_constant_templates_never_share_an_entry(
        joined_first in proptest::bool::ANY,
    ) {
        use mars_system::mars::{Mars, MarsService};

        let joined = {
            let c = fresh_constant("key");
            service_request(&c, true, &c)
        };
        let distinct = service_request(&fresh_constant("key"), true, &fresh_constant("key"));
        let (a, b) = if joined_first { (&joined, &distinct) } else { (&distinct, &joined) };

        let service = MarsService::new(Mars::new(service_correspondence()));
        service.reformulate_xbind(a).expect("reformulates");
        service.reformulate_xbind(b).expect("reformulates");
        let stats = service.cache_stats();
        prop_assert_eq!(stats.hits, 0, "the two templates must not be conflated");
        prop_assert_eq!(stats.entries, 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The anytime contract of the budgeted engine. Chase & Backchase
    /// soundness says *every* rung of the degradation ladder — cost-optimal,
    /// initial, or the bare universal plan — is an equivalent rewriting of
    /// the client query, so a budget can only cost minimality, never
    /// correctness: for any budget (including a deadline of zero and a
    /// candidate ceiling of zero) the answer the budgeted run would serve is
    /// equivalent to the unbounded one under the compiled dependency theory,
    /// checked by containment in both directions. And whenever the run
    /// reports no degradation, the whole result is byte-identical to the
    /// unbounded one.
    #[test]
    fn budgeted_reformulation_is_equivalent_to_unbounded(
        use_deadline in proptest::bool::ANY,
        deadline_ms in 0u64..50,
        use_candidates in proptest::bool::ANY,
        max_candidates in 0usize..4,
        filter_author in proptest::bool::ANY,
    ) {
        use mars_system::mars::{Mars, ReformulationBudget};
        use std::time::Duration;

        let mut budget = ReformulationBudget::unbounded();
        if use_deadline {
            budget = budget.with_deadline(Duration::from_millis(deadline_ms));
        }
        if use_candidates {
            budget = budget.with_max_candidates(max_candidates);
        }

        let mars = Mars::new(service_correspondence());
        let request =
            service_request(&fresh_constant("title"), filter_author, &fresh_constant("author"));

        let unbounded = mars.try_reformulate_xbind(&request).expect("unbounded run");
        let budgeted = mars.try_reformulate_xbind_budgeted(&request, &budget).expect("budgeted run");

        // Compare the answer each run actually serves: best, else initial,
        // else the universal plan (the sound floor a zero budget falls to).
        let served_u =
            unbounded.result.best_or_initial().unwrap_or(&unbounded.result.universal_plan);
        let served_b =
            budgeted.result.best_or_initial().unwrap_or(&budgeted.result.universal_plan);
        let deds = mars.dependencies();
        let copts = ContainmentOptions::default();
        prop_assert!(
            contained_in(served_b, served_u, deds, &copts),
            "budgeted answer not contained in unbounded answer under the dependency theory\n\
             budgeted: {}\nunbounded: {}",
            served_b,
            served_u
        );
        prop_assert!(
            contained_in(served_u, served_b, deds, &copts),
            "unbounded answer not contained in budgeted answer under the dependency theory\n\
             unbounded: {}\nbudgeted: {}",
            served_u,
            served_b
        );

        // Determinism half of the contract: no degradation report means
        // nothing was cut, so the results must be byte-identical — and only
        // a real budget is ever allowed to degrade.
        if budgeted.degradation().is_none() {
            prop_assert_eq!(block_bytes(&budgeted), block_bytes(&unbounded));
        } else {
            prop_assert!(!budget.is_unbounded(), "an unbounded budget must never degrade");
        }
    }
}

// ---------------------------------------------------------------------------
// Physical executor: byte-identical to the naive evaluator and to the XML
// engine (the cross-backend agreement contract of the physical plan layer).
// ---------------------------------------------------------------------------

/// SplitMix-style mixer: the shim's strategies only sample integers, so the
/// random databases and queries below are derived from one sampled seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A random ground database (skewed values, arities 1–3) and a random query
/// over it — deliberately including cross products, duplicate variables,
/// repeated atoms, constants in bodies and heads, inequalities, and *unsafe*
/// heads (variables bound nowhere), so the agreement test covers every
/// operand kind the planner can emit.
fn random_db_and_query(
    seed: u64,
    relations: usize,
    rows: usize,
    atoms: usize,
) -> (mars_system::storage::RelationalDatabase, ConjunctiveQuery) {
    let mut s = seed;
    const VALUES: [&str; 6] = ["c0", "c1", "c2", "c3", "c4", "O'Brien"];
    let mut db = mars_system::storage::RelationalDatabase::new();
    let arity = |r: usize| 1 + (r % 3);
    for r in 0..relations {
        for _ in 0..rows {
            let tuple: Vec<&str> =
                (0..arity(r)).map(|_| VALUES[(mix(&mut s) % 4) as usize]).collect();
            db.insert_strs(&format!("r{r}"), &tuple);
        }
    }
    let term = |s: &mut u64| {
        if mix(s) % 10 < 6 {
            Term::var(&format!("v{}", mix(s) % 5))
        } else {
            Term::constant_str(VALUES[(mix(s) % VALUES.len() as u64) as usize])
        }
    };
    let mut q = ConjunctiveQuery::new("rand");
    for _ in 0..atoms {
        let r = (mix(&mut s) % relations as u64) as usize;
        let args: Vec<Term> = (0..arity(r)).map(|_| term(&mut s)).collect();
        q = q.with_atom(Atom::named(&format!("r{r}"), args));
    }
    for _ in 0..(mix(&mut s) % 3) {
        q = q.with_inequality(term(&mut s), term(&mut s));
    }
    // Head of 1–3 terms; `v5` never occurs in bodies, so sampling it here
    // exercises the unbound-head (unsafe query) path.
    let head: Vec<Term> = (0..1 + mix(&mut s) % 3)
        .map(|_| if mix(&mut s).is_multiple_of(8) { Term::var("v5") } else { term(&mut s) })
        .collect();
    (db, q.with_head(head))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The cost-based physical executor returns byte-identical rows to the
    /// naive bindings evaluator on arbitrary databases and queries — whatever
    /// join order, build side, pushdown or pruning the planner chose.
    #[test]
    fn physical_and_naive_executors_agree_on_random_queries(
        seed in 0u64..1_000_000,
        relations in 1usize..4,
        rows in 0usize..12,
        atoms in 1usize..5,
    ) {
        let (db, q) = random_db_and_query(seed, relations, rows, atoms);
        let physical = db.query(&q);
        prop_assert_eq!(&physical, &db.query_naive(&q), "executors diverged on {}", q);
        // The contract's ascending order, explicitly.
        let mut sorted = physical.clone();
        sorted.sort();
        prop_assert_eq!(physical, sorted);
    }

    /// Cross-backend agreement on the star workload: both relational
    /// executors run the best reformulation over the materialized views and
    /// must return the same answer set the naive XML engine computes for the
    /// unreformulated query over the published document.
    #[test]
    fn relational_executors_agree_with_the_xml_engine(
        nc in 2usize..4,
        hubs in 1usize..4,
        corner in 1usize..4,
        seed in 0u64..1000,
    ) {
        use mars_workloads::star::StarConfig;
        use std::collections::{BTreeSet, HashMap};

        let cfg = StarConfig::figure5(nc);
        let (xml, db) = cfg.populate(hubs, corner, seed);
        let mars = cfg.mars(mars_system::mars::MarsOptions::specialized());
        let block = mars.reformulate_xbind(&cfg.client_query());
        let best = block.result.best_or_initial().expect("star query must reformulate");

        prop_assert_eq!(db.query(best), db.query_naive(best));

        let head = cfg.client_query().head;
        let xml_rows: BTreeSet<Vec<String>> = xml
            .eval_xbind(&cfg.client_query(), &HashMap::new())
            .expect("star documents are stored")
            .iter()
            .map(|row| {
                head.iter()
                    .map(|v| row[v].as_str().expect("text binding").to_string())
                    .collect()
            })
            .collect();
        let rel_rows: BTreeSet<Vec<String>> = db.query_strings(best).into_iter().collect();
        prop_assert_eq!(xml_rows, rel_rows);
    }
}

// ---------------------------------------------------------------------------
// Backend routing: the cross-backend differential suite over the scenario
// matrix. Every route — auto, forced-relational (physical and naive), and
// forced-XML — must return byte-identical rows on every matrix point.
// ---------------------------------------------------------------------------

/// The best reformulation of every scenario-matrix point, computed once.
/// Reformulation depends only on the schema correspondence (never on data
/// scale or seed), so the routing tests below share one pass over the matrix.
fn matrix_reformulations() -> &'static Vec<(mars_workloads::scenarios::Scenario, ConjunctiveQuery)>
{
    use std::sync::OnceLock;
    static BEST: OnceLock<Vec<(mars_workloads::scenarios::Scenario, ConjunctiveQuery)>> =
        OnceLock::new();
    BEST.get_or_init(|| {
        mars_workloads::scenarios::Scenario::matrix()
            .into_iter()
            .map(|scenario| {
                let block = scenario
                    .mars()
                    .try_reformulate_xbind(&scenario.client_query())
                    .expect("scenario queries are well-formed");
                let best = block
                    .result
                    .best_or_initial()
                    .expect("every scenario has an executable query")
                    .clone();
                (scenario, best)
            })
            .collect()
    })
}

/// Auto routing plus both forced ablations return identical rows on every
/// point of the scenario matrix — the differential contract the `--route`
/// experiment ablation rests on. The forced-XML leg falls back to the
/// compiled navigation form of the client query where the best reformulation
/// is XML-infeasible, exactly as the experiment does.
#[test]
fn all_routes_return_identical_results() {
    use mars_system::storage::{BackendRouter, Route};

    for (scenario, best) in matrix_reformulations() {
        let (xml, db) = scenario.populate(8, 7);
        let router = BackendRouter::new(&db, &xml);

        let auto = router.plan(best);
        let forced_rel = router.plan_forced(best, Route::Relational);
        let mut forced_xml = router.plan_forced(best, Route::Xml);
        if forced_xml.decision.route != Route::Xml {
            forced_xml = router.plan_forced(&scenario.navigation_query(), Route::Xml);
        }
        let forced_mixed = router.plan_forced(best, Route::Mixed);

        let rows = router.execute(&auto).expect("documents are stored").rows;
        for (label, plan) in
            [("relational", &forced_rel), ("xml", &forced_xml), ("mixed", &forced_mixed)]
        {
            let forced = router.execute(plan).expect("documents are stored");
            assert_eq!(
                rows,
                forced.rows,
                "{}: auto and forced-{} rows differ",
                scenario.name(),
                label
            );
        }
        assert!(!rows.is_empty(), "{}: scenario data must produce rows", scenario.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The routed execution — whichever backend the router picked for the
    /// sampled scale and seed — agrees byte for byte with both relational
    /// executors (cost-based physical and naive bindings) running the same
    /// reformulation directly.
    #[test]
    fn routed_execution_agrees_with_both_executors(
        idx in 0usize..12,
        scale in 3usize..10,
        seed in 0u64..1000,
    ) {
        use mars_system::storage::BackendRouter;

        let points = matrix_reformulations();
        let (scenario, best) = &points[idx % points.len()];
        let (xml, db) = scenario.populate(scale, seed);
        let router = BackendRouter::new(&db, &xml);
        let routed = router.execute(&router.plan(best)).expect("documents are stored");
        prop_assert_eq!(
            &routed.rows,
            &db.query(best),
            "{}: routed ({:?}) and physical rows differ", scenario.name(), routed.route
        );
        prop_assert_eq!(
            &routed.rows,
            &db.query_naive(best),
            "{}: routed ({:?}) and naive rows differ", scenario.name(), routed.route
        );
    }
}
