//! Property tests of the XML substrate: parse/serialize round trips and
//! GReX encodings.

use mars_system::grex::encode_document;
use mars_system::xml::{parse_document, Document};
use proptest::prelude::*;

fn arbitrary_document(depth: u32, width: usize) -> Document {
    // Deterministic "arbitrary-ish" builder driven by the parameters.
    let mut doc = Document::new("gen.xml");
    let root = doc.create_root("root");
    let mut frontier = vec![root];
    for d in 0..depth {
        let mut next = Vec::new();
        for (i, &parent) in frontier.iter().enumerate() {
            for w in 0..width {
                let el = doc.add_element(parent, &format!("e{d}_{w}"));
                if (i + w) % 2 == 0 {
                    doc.add_text(el, &format!("text {d} {w}"));
                }
                if w == 0 {
                    doc.set_attribute(el, "k", &format!("{d}-{i}-{w}"));
                }
                next.push(el);
            }
        }
        frontier = next;
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn serialize_parse_round_trip(depth in 0u32..4, width in 1usize..4) {
        let doc = arbitrary_document(depth, width);
        let text = doc.to_xml();
        let parsed = parse_document("gen.xml", &text).unwrap();
        prop_assert_eq!(parsed.element_count(), doc.element_count());
    }

    #[test]
    fn grex_encoding_counts_are_consistent(depth in 0u32..4, width in 1usize..4) {
        let doc = arbitrary_document(depth, width);
        let facts = encode_document(&doc);
        let schema = mars_system::grex::GrexSchema::new("gen.xml");
        let els = facts.iter().filter(|a| a.predicate == schema.el()).count();
        let tags = facts.iter().filter(|a| a.predicate == schema.tag()).count();
        let childs = facts.iter().filter(|a| a.predicate == schema.child()).count();
        prop_assert_eq!(els, doc.element_count());
        prop_assert_eq!(tags, doc.element_count());
        prop_assert_eq!(childs, doc.element_count() - 1);
        prop_assert!(facts.iter().all(|a| a.is_ground()));
    }
}
