//! Cross-crate integration tests: the full MARS pipeline on the paper's
//! scenarios, checked for *semantic correctness* — the reformulated query
//! returns the same answers over the proprietary storage as the original
//! query over the published data.

use mars::MarsOptions;
use mars_workloads::{example11, star::StarConfig, xmark};
use std::collections::HashMap;

#[test]
fn star_reformulation_preserves_answers() {
    let cfg = StarConfig::figure5(3);
    let (xml, db) = cfg.populate(5, 4, 11);
    let mars = cfg.mars(MarsOptions::specialized());
    let block = mars.reformulate_xbind(&cfg.client_query());
    assert!(block.result.has_reformulation());

    let unreformulated = xml.eval_xbind(&cfg.client_query(), &HashMap::new()).unwrap();
    let best = block.result.best_or_initial().unwrap();
    let reformulated = db.query(best);
    assert_eq!(
        unreformulated.len(),
        reformulated.len(),
        "reformulated query must return the same number of answers"
    );
}

#[test]
fn example_1_1_reformulates_and_executes() {
    let system = example11::mars();
    let (xml, mut db) = example11::populate(6);
    let block = system.reformulate_xbind(&example11::client_query());
    assert!(block.result.has_reformulation());
    // Mixed storage: reformulations may navigate the proprietary XML documents.
    // Load their GReX encodings so the relational engine can execute those atoms.
    for doc in xml.document_names() {
        db.load_facts(&mars_system::grex::encode_document(xml.document(&doc).unwrap()));
    }
    let best = block.result.best_or_initial().unwrap();
    let rows = db.query(best);
    assert!(!rows.is_empty(), "diagnosis-price associations must be returned: {best}");
}

#[test]
fn xmark_suite_reformulates_within_budget() {
    let system = xmark::mars(true);
    for q in xmark::query_suite() {
        let block = system.reformulate_xbind(&q);
        assert!(block.result.has_reformulation(), "{} must be reformulable", q.name);
        assert!(
            block.duration.as_secs() < 30,
            "{} took unreasonably long: {:?}",
            q.name,
            block.duration
        );
    }
}
