//! Golden-file tests for backend routing decisions.
//!
//! Snapshots the rendered [`RoutingDecision`](mars_system::storage::RoutingDecision)
//! — chosen route plus the per-backend cost estimates — for the best
//! reformulation of every scenario-matrix point over deterministically
//! populated stores. Router changes (the navigation cost model, the greedy
//! atom order, feasibility clamping) cannot silently flip a route or shift an
//! estimate: the routing layer steers *where* a query runs, never what it
//! returns (the differential suite in `property_based.rs` pins byte-identical
//! rows on every route), so a golden diff here is a routing review, not a
//! correctness one.
//!
//! # Regenerating the snapshots
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_routes
//! ```
//!
//! then review the diff under `tests/golden/routes/` like any other code
//! change. The estimates come from exact statistics of the populated stores,
//! so they are sensitive to the workload generators' scale and seed (pinned
//! below) and to the navigation cost model in `mars-cost`.

use mars_system::storage::BackendRouter;
use mars_workloads::scenarios::Scenario;
use std::path::PathBuf;

/// Scale and seed for the snapshot stores — small enough to populate fast,
/// large enough that the per-backend estimates separate clearly.
const SCALE: usize = 8;
const SEED: u64 = 7;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/routes").join(name)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected.trim(),
        actual.trim(),
        "routing decision for {name} diverged from the golden snapshot; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

/// One snapshot per scenario-matrix point: the auto route chosen for the
/// best reformulation, with every backend's estimate (or `infeasible`).
#[test]
fn routing_decisions_are_stable_across_the_scenario_matrix() {
    for scenario in Scenario::matrix() {
        let block = scenario
            .mars()
            .try_reformulate_xbind(&scenario.client_query())
            .expect("scenario queries are well-formed");
        let best = block.result.best_or_initial().expect("every scenario has an executable query");
        let (xml, db) = scenario.populate(SCALE, SEED);
        let router = BackendRouter::new(&db, &xml);
        let plan = router.plan(best);
        assert_matches_golden(
            &format!("{}.route.txt", scenario.name()),
            &plan.decision.to_string(),
        );
    }
}
