//! Regression tests for the shared-compilation and shared-index contracts:
//! a `Mars` instance (and the `ChaseBackchase` engine inside it) compiles
//! its dependency set exactly once, at construction — reformulating any
//! number of query blocks, running any number of back-chase candidates,
//! never recompiles — and premise evaluation over a symbolic instance reuses
//! the instance's persistent per-predicate column indexes instead of
//! rebuilding hash tables per evaluation.
//!
//! These tests live in their own integration-test binary because they assert
//! exact deltas of process-wide counters (`mars_chase::compilation_count`,
//! `mars_chase::index_build_count`); sharing a binary with other tests that
//! build engines concurrently would make the deltas racy. For the same
//! reason the tests *within* this binary serialize themselves on
//! [`COUNTER_LOCK`] — libtest runs them on parallel threads by default.

use mars_system::chase::{compilation_count, index_build_count};
use mars_system::mars::{Mars, MarsOptions, SchemaCorrespondence};
use mars_system::workloads::star::StarConfig;
use mars_system::xml::parse_path;
use mars_system::xquery::{XBindAtom, XBindQuery};
use std::sync::Mutex;

/// Serializes the tests of this binary: each one measures exact deltas of
/// the global compilation counter, so two running concurrently would see
/// each other's compilations.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// A small publishing scenario: a proprietary table published as a document
/// through a GAV view, plus a LAV cache of the author list.
fn correspondence() -> SchemaCorrespondence {
    let case_body =
        XBindQuery::new("PubMap").with_head(&["t", "a"]).with_atom(XBindAtom::Relational {
            relation: "bookRel".to_string(),
            args: vec![
                mars_system::xquery::XBindTerm::var("t"),
                mars_system::xquery::XBindTerm::var("a"),
            ],
        });
    let gav = mars_system::grex::ViewDef::xml_flat(
        "PubMap",
        case_body,
        "bib.xml",
        "book",
        &["title", "author"],
    );
    SchemaCorrespondence {
        public_documents: vec!["bib.xml".to_string()],
        gav_views: vec![gav],
        proprietary_relations: vec!["bookRel".to_string()],
        ..Default::default()
    }
}

#[test]
fn multi_block_reformulation_compiles_dependencies_once() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    let before = compilation_count();
    let mars = Mars::new(correspondence());
    let after_build = compilation_count();
    assert_eq!(after_build - before, 1, "building Mars compiles the dependency set exactly once");

    // A two-block client XQuery (nested FLWR decorrelates into two XBind
    // blocks), plus an extra standalone block: several chases, many
    // back-chase candidates — zero further compilations.
    let nested = r#"<result>
        for $a in distinct(//author/text())
        return
          <item>
            <writer>$a</writer>
            {for $b in //book
                 $a1 in $b/author/text()
             where $a = $a1
             return $b}
          </item>
      </result>"#;
    let result = mars.reformulate_xquery(nested, "bib.xml").expect("parses");
    assert!(result.blocks.len() >= 2, "expected a multi-block query, got {}", result.blocks.len());

    let extra = XBindQuery::new("Extra")
        .with_head(&["t", "a"])
        .with_atom(XBindAtom::AbsolutePath {
            document: "bib.xml".to_string(),
            path: parse_path("//book").unwrap(),
            var: "b".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./title/text()").unwrap(),
            source: "b".to_string(),
            var: "t".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./author/text()").unwrap(),
            source: "b".to_string(),
            var: "a".to_string(),
        });
    let block = mars.reformulate_xbind(&extra);
    assert!(block.result.has_reformulation());

    assert_eq!(
        compilation_count() - after_build,
        0,
        "no public API caller may recompile dependencies per chase or per block"
    );
}

/// The per-predicate index contract: evaluating the same conjunction again
/// over an unchanged — or grown-by-insert — instance must not rebuild any
/// hash index (the instance's persistent column indexes are built once and
/// maintained incrementally; only an EGD rewrite of a relation drops them).
#[test]
fn premise_evaluation_reuses_instance_indexes() {
    use mars_system::chase::{evaluate_bindings, satisfiable, SymbolicInstance};
    use mars_system::cq::{Atom, ConjunctiveQuery, Substitution, Term};

    let _serial = COUNTER_LOCK.lock().unwrap();
    let t = Term::var;
    let mut body = Vec::new();
    for i in 0..12 {
        body.push(Atom::named("R", vec![t(&format!("a{i}")), t(&format!("a{}", i + 1))]));
        body.push(Atom::named("L", vec![t(&format!("a{i}"))]));
    }
    let mut inst = SymbolicInstance::from_query(&ConjunctiveQuery::new("Q").with_body(body));
    let premise = vec![
        Atom::named("R", vec![t("x"), t("y")]),
        Atom::named("R", vec![t("y"), t("z")]),
        Atom::named("L", vec![t("x")]),
    ];

    let before = index_build_count();
    let first = evaluate_bindings(&premise, &[], &inst, &Substitution::new());
    assert!(!first.is_empty());
    let after_first = index_build_count();
    assert!(after_first > before, "the first evaluation builds the needed indexes");

    // Re-evaluating (bulk and semijoin) builds nothing.
    let again = evaluate_bindings(&premise, &[], &inst, &Substitution::new());
    assert_eq!(again.len(), first.len());
    assert!(satisfiable(&premise, &[], &inst, &Substitution::new()));
    assert_eq!(
        index_build_count(),
        after_first,
        "repeated evaluation must reuse the persistent indexes, not rebuild them"
    );

    // Inserting maintains the indexes incrementally — still no rebuild, and
    // the new tuple is visible through them.
    inst.insert_atom(&Atom::named("R", vec![t("a12"), t("a13")]));
    let grown = evaluate_bindings(&premise, &[], &inst, &Substitution::new());
    assert_eq!(grown.len(), first.len() + 1);
    assert_eq!(
        index_build_count(),
        after_first,
        "inserts must update the indexes in place, not rebuild them"
    );
}

/// The title-filter client query with a per-request key constant: the
/// arrival pattern of a resident service (one template, many constants).
fn title_filter(title: &str) -> XBindQuery {
    XBindQuery::new("Client")
        .with_head(&["a"])
        .with_atom(XBindAtom::AbsolutePath {
            document: "bib.xml".to_string(),
            path: parse_path("//book").unwrap(),
            var: "b".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./title/text()").unwrap(),
            source: "b".to_string(),
            var: "t".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./author/text()").unwrap(),
            source: "b".to_string(),
            var: "a".to_string(),
        })
        .with_atom(XBindAtom::Eq(
            mars_system::xquery::XBindTerm::var("t"),
            mars_system::xquery::XBindTerm::str(title),
        ))
}

/// The plan-cache stats contract: constants-only repeats of a template hit
/// the cache, a structurally different query misses, and the counters in
/// `PlanCache::stats()` (surfaced as `MarsService::cache_stats()`) say so.
#[test]
fn plan_cache_counts_hits_and_misses() {
    use mars_system::mars::MarsService;

    let _serial = COUNTER_LOCK.lock().unwrap();
    let service = MarsService::new(Mars::new(correspondence()));
    let cold = service.reformulate_xbind(&title_filter("alpha")).expect("reformulates");
    assert!(cold.result.has_reformulation());
    for key in ["beta", "gamma", "delta"] {
        let warm = service.reformulate_xbind(&title_filter(key)).expect("reformulates");
        assert!(warm.sql.as_ref().expect("sql").contains(key), "hit carries the fresh constant");
    }
    // A structurally different template (no filter) is its own shape.
    let other = title_filter("unused");
    let other = XBindQuery { atoms: other.atoms[..3].to_vec(), ..other };
    service.reformulate_xbind(&other).expect("reformulates");

    let stats = service.cache_stats();
    assert_eq!(stats.hits, 3, "three constants-only repeats");
    assert_eq!(stats.misses, 2, "two distinct shapes reformulated cold");
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.invalidations, 0);
}

/// Fingerprint invalidation: replacing the system with one built from a
/// changed correspondence strands every cached plan — the service counts
/// the invalidations and reformulates the next arrival cold.
#[test]
fn plan_cache_invalidates_on_fingerprint_change() {
    use mars_system::mars::MarsService;

    let _serial = COUNTER_LOCK.lock().unwrap();
    let mut service = MarsService::new(Mars::new(correspondence()));
    service.reformulate_xbind(&title_filter("alpha")).expect("reformulates");
    let old_fingerprint = service.fingerprint();
    assert_eq!(service.cache_stats().entries, 1);

    let mut changed = correspondence();
    changed.proprietary_relations.push("auditLog".to_string());
    service.replace(Mars::new(changed));
    assert_ne!(service.fingerprint(), old_fingerprint, "the dependency set changed");

    let stats = service.cache_stats();
    assert_eq!(stats.entries, 0, "stale plans are dropped, not served");
    assert_eq!(stats.invalidations, 1);

    let again = service.reformulate_xbind(&title_filter("alpha")).expect("reformulates");
    assert!(again.result.has_reformulation(), "cold reformulation under the new fingerprint");
    let stats = service.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 2));
}

/// Concurrent warm access is deterministic: every thread hammering the same
/// shared service gets, for each request constant, output identical to every
/// other thread's and to a cold single-threaded reformulation.
#[test]
fn concurrent_warm_cache_access_is_deterministic() {
    use mars_system::mars::MarsService;

    let _serial = COUNTER_LOCK.lock().unwrap();
    let service = MarsService::new(Mars::new(correspondence()));
    service.reformulate_xbind(&title_filter("warmup")).expect("reformulates");

    let keys = ["k-one", "k-two", "k-three"];
    let per_thread: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    keys.iter()
                        .map(|k| {
                            let block =
                                service.reformulate_xbind(&title_filter(k)).expect("reformulates");
                            format!(
                                "{} | {:?} | {}",
                                block.result.universal_plan,
                                block.result.minimal,
                                block.sql.as_deref().unwrap_or("-")
                            )
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("thread")).collect()
    });
    for other in &per_thread[1..] {
        assert_eq!(&per_thread[0], other, "all threads must observe identical warm plans");
    }

    // And the warm plans are exactly what a cold system computes.
    let cold = Mars::new(correspondence());
    for (i, k) in keys.iter().enumerate() {
        let block = cold.try_reformulate_xbind(&title_filter(k)).expect("reformulates");
        let rendered = format!(
            "{} | {:?} | {}",
            block.result.universal_plan,
            block.result.minimal,
            block.sql.as_deref().unwrap_or("-")
        );
        assert_eq!(per_thread[0][i], rendered, "warm output differs from cold for {k}");
    }
}

/// Cache hygiene under budgets: a degraded (best-so-far) result is never
/// inserted into the plan cache — `CacheStats::degraded_uncached` counts it
/// instead — so a later within-budget arrival of the same shape is computed
/// cold, cached, and serves all subsequent warm traffic.
#[test]
fn degraded_results_never_poison_the_plan_cache() {
    use mars_system::mars::{MarsService, ReformulationBudget};
    use std::time::Duration;

    let _serial = COUNTER_LOCK.lock().unwrap();
    let service = MarsService::new(Mars::new(correspondence()));

    // A zero deadline degrades to the universal-plan floor on the cold path.
    let strangled = ReformulationBudget::unbounded().with_deadline(Duration::ZERO);
    let degraded = service
        .reformulate_xbind_with(&title_filter("alpha"), &strangled)
        .expect("degraded, not an error");
    assert!(degraded.is_degraded(), "a zero deadline must cut something");
    let stats = service.cache_stats();
    assert_eq!(stats.entries, 0, "degraded plans are never cached");
    assert_eq!(stats.degraded_uncached, 1);

    // The same shape within budget: no stale hit is possible (nothing was
    // cached), so it reformulates cold — and this one is cached.
    let healthy = service.reformulate_xbind(&title_filter("beta")).expect("reformulates");
    assert!(!healthy.is_degraded());
    assert!(healthy.result.has_reformulation());
    let stats = service.cache_stats();
    assert_eq!((stats.entries, stats.hits, stats.misses), (1, 0, 2));

    // Third arrival: a warm hit off the healthy entry, carrying its constant.
    let warm = service.reformulate_xbind(&title_filter("gamma")).expect("reformulates");
    assert!(!warm.is_degraded());
    assert!(warm.sql.as_ref().expect("sql").contains("gamma"));
    let stats = service.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.degraded_uncached, 1, "hygiene counter unmoved by healthy traffic");
    let served = service.service_stats();
    assert_eq!((served.served, served.degraded), (2, 1));
}

/// The cache outranks the budget in the degradation ladder: once a healthy
/// plan is cached, even a zero-deadline arrival of the same shape is served
/// warm and undegraded — budgets only bite on the cold path.
#[test]
fn warm_hits_survive_a_zero_budget() {
    use mars_system::mars::{MarsService, ReformulationBudget};
    use std::time::Duration;

    let _serial = COUNTER_LOCK.lock().unwrap();
    let service = MarsService::new(Mars::new(correspondence()));
    service.reformulate_xbind(&title_filter("alpha")).expect("cold healthy run");

    let strangled = ReformulationBudget::unbounded().with_deadline(Duration::ZERO);
    let warm = service.reformulate_xbind_with(&title_filter("beta"), &strangled).expect("warm run");
    assert!(!warm.is_degraded(), "warm traffic must not degrade under any budget");
    assert!(warm.sql.as_ref().expect("sql").contains("beta"));
    let stats = service.cache_stats();
    assert_eq!((stats.hits, stats.degraded_uncached), (1, 0));
    assert_eq!(service.service_stats().served, 2);
}

#[test]
fn star_reformulation_reuses_the_engine_compilation() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    let cfg = StarConfig::figure5(4);
    let before = compilation_count();
    let mars = cfg.mars(MarsOptions::specialized().exhaustive());
    let after_build = compilation_count();
    assert_eq!(after_build - before, 1);

    // The exhaustive star backchase runs hundreds of candidate back-chases;
    // every one must reuse the shared compilation.
    let block = mars.reformulate_xbind(&cfg.client_query());
    assert_eq!(block.result.minimal.len(), 1 << cfg.nv);
    assert!(block.result.stats.equivalence_checks > 10);
    assert_eq!(compilation_count() - after_build, 0, "back-chases must not recompile");
}

/// Warm plan-cache hits replay the cached routing decision byte-identically:
/// the cold routed request prices the best reformulation against both stores
/// and caches the decision inside the block, so the warm hit carries the same
/// rendered decision without re-pricing.
#[test]
fn warm_plan_cache_hits_replay_the_cached_route() {
    use mars_system::mars::MarsService;
    use mars_system::workloads::scenarios::Scenario;

    let _serial = COUNTER_LOCK.lock().unwrap();
    let scenario = Scenario::matrix()
        .into_iter()
        .find(|s| s.name() == "chain-skewed-r0")
        .expect("the matrix contains the navigation-heavy chain point");
    let (xml, db) = scenario.populate(8, 7);
    let service = MarsService::new(scenario.mars());

    let cold = service
        .reformulate_xbind_routed(&scenario.client_query(), &db, &xml)
        .expect("reformulates");
    let cold_route = cold.route.as_ref().expect("the routed entry point prices the plan");

    let warm = service
        .reformulate_xbind_routed(&scenario.client_query(), &db, &xml)
        .expect("reformulates");
    let warm_route = warm.route.as_ref().expect("the warm hit still carries a route");

    let stats = service.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1), "second arrival is a shape hit");
    assert_eq!(
        cold_route.to_string(),
        warm_route.to_string(),
        "the warm hit must replay the cached decision byte-identically"
    );
    // The navigation-heavy point routes to the XML backend — the cached
    // decision preserves that, it does not fall back to a default.
    assert!(cold_route.to_string().starts_with("route=xml"), "{cold_route}");
}

/// Fingerprint invalidation strands cached routes along with cached plans:
/// after `replace()` with a changed correspondence, the stale route is
/// dropped and the next routed arrival re-prices cold under the new system.
#[test]
fn fingerprint_invalidation_drops_cached_routes() {
    use mars_system::mars::MarsService;
    use mars_system::workloads::scenarios::Scenario;

    let _serial = COUNTER_LOCK.lock().unwrap();
    let scenario = Scenario::matrix()
        .into_iter()
        .find(|s| s.name() == "chain-skewed-r0")
        .expect("the matrix contains the navigation-heavy chain point");
    let (xml, db) = scenario.populate(8, 7);
    let mut service = MarsService::new(scenario.mars());

    service.reformulate_xbind_routed(&scenario.client_query(), &db, &xml).expect("reformulates");
    assert_eq!(service.cache_stats().entries, 1);
    let old_fingerprint = service.fingerprint();

    let mut changed = scenario.correspondence();
    changed.proprietary_relations.push("auditLog".to_string());
    service.replace(Mars::new(changed));
    assert_ne!(service.fingerprint(), old_fingerprint, "the dependency set changed");
    let stats = service.cache_stats();
    assert_eq!(
        (stats.entries, stats.invalidations),
        (0, 1),
        "stale plans and their routes are dropped, not served"
    );

    let again = service
        .reformulate_xbind_routed(&scenario.client_query(), &db, &xml)
        .expect("re-prices cold under the new fingerprint");
    assert!(again.route.is_some(), "the cold path prices a fresh route");
    let stats = service.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 2));
}
