//! Regression tests for the shared-compilation contract: a `Mars` instance
//! (and the `ChaseBackchase` engine inside it) compiles its dependency set
//! exactly once, at construction — reformulating any number of query blocks,
//! running any number of back-chase candidates, never recompiles.
//!
//! These tests live in their own integration-test binary because they assert
//! exact deltas of the process-wide compilation counter
//! (`mars_chase::compilation_count`); sharing a binary with other tests that
//! build engines concurrently would make the deltas racy. For the same
//! reason the tests *within* this binary serialize themselves on
//! [`COUNTER_LOCK`] — libtest runs them on parallel threads by default.

use mars_system::chase::compilation_count;
use mars_system::mars::{Mars, MarsOptions, SchemaCorrespondence};
use mars_system::workloads::star::StarConfig;
use mars_system::xml::parse_path;
use mars_system::xquery::{XBindAtom, XBindQuery};
use std::sync::Mutex;

/// Serializes the tests of this binary: each one measures exact deltas of
/// the global compilation counter, so two running concurrently would see
/// each other's compilations.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// A small publishing scenario: a proprietary table published as a document
/// through a GAV view, plus a LAV cache of the author list.
fn correspondence() -> SchemaCorrespondence {
    let case_body =
        XBindQuery::new("PubMap").with_head(&["t", "a"]).with_atom(XBindAtom::Relational {
            relation: "bookRel".to_string(),
            args: vec![
                mars_system::xquery::XBindTerm::var("t"),
                mars_system::xquery::XBindTerm::var("a"),
            ],
        });
    let gav = mars_system::grex::ViewDef::xml_flat(
        "PubMap",
        case_body,
        "bib.xml",
        "book",
        &["title", "author"],
    );
    SchemaCorrespondence {
        public_documents: vec!["bib.xml".to_string()],
        gav_views: vec![gav],
        proprietary_relations: vec!["bookRel".to_string()],
        ..Default::default()
    }
}

#[test]
fn multi_block_reformulation_compiles_dependencies_once() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    let before = compilation_count();
    let mars = Mars::new(correspondence());
    let after_build = compilation_count();
    assert_eq!(after_build - before, 1, "building Mars compiles the dependency set exactly once");

    // A two-block client XQuery (nested FLWR decorrelates into two XBind
    // blocks), plus an extra standalone block: several chases, many
    // back-chase candidates — zero further compilations.
    let nested = r#"<result>
        for $a in distinct(//author/text())
        return
          <item>
            <writer>$a</writer>
            {for $b in //book
                 $a1 in $b/author/text()
             where $a = $a1
             return $b}
          </item>
      </result>"#;
    let result = mars.reformulate_xquery(nested, "bib.xml").expect("parses");
    assert!(result.blocks.len() >= 2, "expected a multi-block query, got {}", result.blocks.len());

    let extra = XBindQuery::new("Extra")
        .with_head(&["t", "a"])
        .with_atom(XBindAtom::AbsolutePath {
            document: "bib.xml".to_string(),
            path: parse_path("//book").unwrap(),
            var: "b".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./title/text()").unwrap(),
            source: "b".to_string(),
            var: "t".to_string(),
        })
        .with_atom(XBindAtom::RelativePath {
            path: parse_path("./author/text()").unwrap(),
            source: "b".to_string(),
            var: "a".to_string(),
        });
    let block = mars.reformulate_xbind(&extra);
    assert!(block.result.has_reformulation());

    assert_eq!(
        compilation_count() - after_build,
        0,
        "no public API caller may recompile dependencies per chase or per block"
    );
}

#[test]
fn star_reformulation_reuses_the_engine_compilation() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    let cfg = StarConfig::figure5(4);
    let before = compilation_count();
    let mars = cfg.mars(MarsOptions::specialized().exhaustive());
    let after_build = compilation_count();
    assert_eq!(after_build - before, 1);

    // The exhaustive star backchase runs hundreds of candidate back-chases;
    // every one must reuse the shared compilation.
    let block = mars.reformulate_xbind(&cfg.client_query());
    assert_eq!(block.result.minimal.len(), 1 << cfg.nv);
    assert!(block.result.stats.equivalence_checks > 10);
    assert_eq!(compilation_count() - after_build, 0, "back-chases must not recompile");
}
